//! Property tests: SPH invariants under random gas configurations.

use jc_sph::density::compute_density;
use jc_sph::forces::hydro_rates;
use jc_sph::particles::GasParticles;
use proptest::prelude::*;

fn arb_gas(n: usize) -> impl Strategy<Value = GasParticles> {
    proptest::collection::vec(
        (
            (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0),
            (-0.5f64..0.5, -0.5f64..0.5, -0.5f64..0.5),
            0.01f64..2.0,
        ),
        n,
    )
    .prop_map(|v| {
        let mut g = GasParticles::new();
        for ((x, y, z), (vx, vy, vz), u) in v {
            g.push(1.0 / 64.0, [x, y, z], [vx, vy, vz], u);
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pressure + viscosity forces conserve linear momentum exactly
    /// (pairwise antisymmetry), for any state.
    #[test]
    fn momentum_conserved(mut gas in arb_gas(96)) {
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        let mut p = [0.0f64; 3];
        let mut scale = 0.0f64;
        for (m, a) in gas.mass.iter().zip(&rates.acc) {
            for k in 0..3 { p[k] += m * a[k]; }
            scale += m * (a[0]*a[0]+a[1]*a[1]+a[2]*a[2]).sqrt();
        }
        for k in 0..3 {
            prop_assert!(p[k].abs() <= 1e-9 * scale.max(1e-12), "leak {p:?}");
        }
    }

    /// Densities are strictly positive and smoothing lengths finite.
    #[test]
    fn density_positive(mut gas in arb_gas(64)) {
        compute_density(&mut gas);
        for i in 0..gas.len() {
            prop_assert!(gas.rho[i] > 0.0);
            prop_assert!(gas.h[i].is_finite() && gas.h[i] > 0.0);
        }
    }

    /// Shear-free uniform expansion cools the gas (du < 0 for diverging
    /// flows): the adiabatic energy equation has the right sign.
    #[test]
    fn expansion_cools(seed in 1u64..1000) {
        let mut gas = jc_sph::particles::plummer_gas(128, 1.0, seed);
        // radial outflow
        for i in 0..gas.len() {
            let p = gas.pos[i];
            gas.vel[i] = [p[0], p[1], p[2]];
        }
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        let du_tot: f64 = rates.du.iter().sum();
        prop_assert!(du_tot < 0.0, "expanding gas must cool: {du_tot}");
    }

    /// The SoA density/force paths track the scalar reference within a
    /// tight relative tolerance on any Plummer gas, with identical
    /// h-adaptation trajectories and interaction counts.
    #[test]
    fn simd_paths_match_scalar(seed in 1u64..500, n in 64usize..400) {
        let mut a = jc_sph::particles::plummer_gas(n, 1.0, seed);
        let mut b = a.clone();
        let mut scalar = jc_sph::SphScratch::new();
        let mut simd = jc_sph::SphScratch::new();
        simd.simd = true;
        let ia = jc_sph::density::compute_density_with(&mut a, &mut scalar);
        let ib = jc_sph::density::compute_density_with(&mut b, &mut simd);
        prop_assert_eq!(ia, ib);
        for i in 0..a.len() {
            prop_assert_eq!(a.h[i].to_bits(), b.h[i].to_bits());
            let rel = (a.rho[i] - b.rho[i]).abs() / a.rho[i].abs().max(1e-300);
            prop_assert!(rel < 1e-11, "rho[{}]: {} vs {}", i, a.rho[i], b.rho[i]);
        }
        let mut ra = jc_sph::HydroRates::new();
        let mut rb = jc_sph::HydroRates::new();
        jc_sph::forces::hydro_rates_into(&a, &mut scalar, &mut ra);
        jc_sph::forces::hydro_rates_into(&b, &mut simd, &mut rb);
        prop_assert_eq!(ra.interactions, rb.interactions);
        let scale = ra
            .acc
            .iter()
            .flatten()
            .fold(0.0f64, |s, x| s.max(x.abs()))
            .max(1e-300);
        for (i, (x, y)) in rb.acc.iter().zip(&ra.acc).enumerate() {
            for k in 0..3 {
                prop_assert!(
                    (x[k] - y[k]).abs() <= 1e-9 * scale,
                    "acc[{}][{}]: {} vs {}", i, k, x[k], y[k]
                );
            }
        }
    }
}
