//! Property tests: SPH invariants under random gas configurations.

use jc_sph::density::compute_density;
use jc_sph::forces::hydro_rates;
use jc_sph::particles::GasParticles;
use proptest::prelude::*;

fn arb_gas(n: usize) -> impl Strategy<Value = GasParticles> {
    proptest::collection::vec(
        (
            (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0),
            (-0.5f64..0.5, -0.5f64..0.5, -0.5f64..0.5),
            0.01f64..2.0,
        ),
        n,
    )
    .prop_map(|v| {
        let mut g = GasParticles::new();
        for ((x, y, z), (vx, vy, vz), u) in v {
            g.push(1.0 / 64.0, [x, y, z], [vx, vy, vz], u);
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pressure + viscosity forces conserve linear momentum exactly
    /// (pairwise antisymmetry), for any state.
    #[test]
    fn momentum_conserved(mut gas in arb_gas(96)) {
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        let mut p = [0.0f64; 3];
        let mut scale = 0.0f64;
        for (m, a) in gas.mass.iter().zip(&rates.acc) {
            for k in 0..3 { p[k] += m * a[k]; }
            scale += m * (a[0]*a[0]+a[1]*a[1]+a[2]*a[2]).sqrt();
        }
        for k in 0..3 {
            prop_assert!(p[k].abs() <= 1e-9 * scale.max(1e-12), "leak {p:?}");
        }
    }

    /// Densities are strictly positive and smoothing lengths finite.
    #[test]
    fn density_positive(mut gas in arb_gas(64)) {
        compute_density(&mut gas);
        for i in 0..gas.len() {
            prop_assert!(gas.rho[i] > 0.0);
            prop_assert!(gas.h[i].is_finite() && gas.h[i] > 0.0);
        }
    }

    /// Shear-free uniform expansion cools the gas (du < 0 for diverging
    /// flows): the adiabatic energy equation has the right sign.
    #[test]
    fn expansion_cools(seed in 1u64..1000) {
        let mut gas = jc_sph::particles::plummer_gas(128, 1.0, seed);
        // radial outflow
        for i in 0..gas.len() {
            let p = gas.pos[i];
            gas.vel[i] = [p[0], p[1], p[2]];
        }
        compute_density(&mut gas);
        let rates = hydro_rates(&gas);
        let du_tot: f64 = rates.du.iter().sum();
        prop_assert!(du_tot < 0.0, "expanding gas must cool: {du_tot}");
    }
}
