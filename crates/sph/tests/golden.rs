//! Golden-vector determinism tests: the CSR-grid density pass must
//! reproduce the pre-refactor HashMap-grid pass bitwise — same cells,
//! same candidate order, same accumulation order. Captured from the
//! original implementation (64-particle Plummer gas, seed 3) before the
//! refactor.

use jc_sph::density::{compute_density, compute_density_with, SphScratch};
use jc_sph::particles::plummer_gas;

const N: usize = 64;
const GOLDEN_INTERACTIONS: u64 = 2241;

#[rustfmt::skip]
const GOLDEN_RHO: [u64; N] = [
    0x3fd8e445cea4f979, 0x3f91ad38f6e2788a, 0x3fcf3ae91654666a, 0x3fe847ba8e7ad4da,
    0x3fd1099a72f3aca1, 0x3fb4d55ff235f13a, 0x3f966d34d14cf905, 0x3fd99a3303f79624,
    0x3f92e9247a67ba6f, 0x3fb2b6027ada38d4, 0x3f6720858664c935, 0x3fd19aa8e6e9b1d0,
    0x3fe32e65bb590855, 0x3f79747040f66879, 0x3fe284ce068973fb, 0x3f7690086a0e20c1,
    0x3fbb74be2b3b2549, 0x3fb4aac65150b3b3, 0x3fecc62a71139bea, 0x3f680b53d3dee3da,
    0x3fe9dca121d493d4, 0x3fe31e498aac0dbf, 0x3fc0c0f2ae293473, 0x3f75a27647748c62,
    0x3f6ee574fc9dc283, 0x3f83c7e2573eb479, 0x3fc3c91df2163e00, 0x3fe15541a2b6bdbc,
    0x3fa5eda7f5862041, 0x3fb390b16ac18feb, 0x3fa102ab8cb68c15, 0x3fc1c1a490901cc7,
    0x3fcd3d9fe698fb80, 0x3fe7b2f206d6c784, 0x3f93882e0e609344, 0x3f8c278891793032,
    0x3fd9ebf4117c8a74, 0x3fcad39ceed7c512, 0x3fbcd6d2c380a9bd, 0x3f64eaf63642544c,
    0x3f8ce59f33068d99, 0x3fc37697cf2f8056, 0x3fcc83c1c8081cf7, 0x3f949739ac81adb4,
    0x3fa0509c1c03c2d6, 0x3fe804491e2724ef, 0x3fa19e1e80c6a5b9, 0x3fe3c6996b790de3,
    0x3fc7898158258a4d, 0x3f7b0035da731f31, 0x3fd5c3ea65af5d85, 0x3fe6dd992f519021,
    0x3fad74cca46a2ae2, 0x3fdff9f9a122cf0f, 0x3f6a308b87d2454b, 0x3fa2abd5e4e15122,
    0x3fb5e4ee7809e243, 0x3fc2665878e29a15, 0x3fd43c6419cc616e, 0x3fd98465b9c5ec0c,
    0x3f91590d4ed1f197, 0x3fc7979d7a97747d, 0x3fc1ae87f17f1396, 0x3fb6acf61eb22a0a,
];

#[rustfmt::skip]
const GOLDEN_H: [u64; N] = [
    0x3fe79ca05cb0dc8a, 0x3ffe28172415969a, 0x3feee6011c336d8c, 0x3fe590d018a13eb1,
    0x3fea581ec27216a3, 0x3ff3dcb64e5bcae3, 0x3ff79ca05cb0dc88, 0x3fe8a3c2db54239e,
    0x400005e8fcb87fe8, 0x3ff2ff5a299d0072, 0x4005bf2605dd7a8c, 0x3fed5cd5c1f9ed8b,
    0x3fe96f605ce8b80f, 0x4005bf2605dd7a8c, 0x3fe867b2926cae9a, 0x4005bf2605dd7a8c,
    0x3ff142a61220b4af, 0x3ff2ff5a299d0072, 0x3fe6287f7429f04a, 0x4005bf2605dd7a8c,
    0x3fe6c768e5a6646d, 0x3fe5865640b5aaaa, 0x3ff142a61220b4af, 0x4005bf2605dd7a8c,
    0x4005bf2605dd7a8c, 0x4005bf2605dd7a8c, 0x3ff098878b883711, 0x3fe8b507443baabf,
    0x3ff5bf2605dd7a8c, 0x3ff5bf2605dd7a8c, 0x3ffad9d8b18583a2, 0x3ff142a61220b4af,
    0x3fed5cd5c1f9ed8b, 0x3fe68dab52c03803, 0x400098878b883711, 0x4002ff5a299d0072,
    0x3fe874afc26b1a62, 0x3fec7a48fc8b42a4, 0x3ff098878b883711, 0x4005bf2605dd7a8c,
    0x400142a61220b4af, 0x3ff098878b883711, 0x3febfeb2736d6966, 0x3ffbfeb2736d6966,
    0x3ff5bf2605dd7a8c, 0x3fe5dfb139cd0809, 0x3ffa581ec27216a3, 0x3fe874afc26b1a63,
    0x3ff098878b883711, 0x4005bf2605dd7a8c, 0x3fe7ef70972b0bd9, 0x3fe7caa73c1a8b2e,
    0x3ff43015381f0c96, 0x3fe895a35dbe80ea, 0x4005bf2605dd7a8c, 0x3ff5bf2605dd7a8c,
    0x3ff43015381f0c96, 0x3ff098878b883711, 0x3feb9dd68367877f, 0x3fe7ef70972b0bd8,
    0x400098878b883711, 0x3feb662ae8f37e2d, 0x3ff005e8fcb87fe8, 0x3ff2ff5a299d0072,
];

fn check(gas: &jc_sph::GasParticles) {
    for i in 0..N {
        assert_eq!(
            gas.rho[i].to_bits(),
            GOLDEN_RHO[i],
            "rho[{i}] = {} diverges from the pre-refactor density pass",
            gas.rho[i]
        );
        assert_eq!(
            gas.h[i].to_bits(),
            GOLDEN_H[i],
            "h[{i}] = {} diverges from the pre-refactor density pass",
            gas.h[i]
        );
    }
}

#[test]
fn density_matches_pre_refactor_golden() {
    let mut gas = plummer_gas(N, 1.0, 3);
    assert_eq!(compute_density(&mut gas), GOLDEN_INTERACTIONS);
    check(&gas);
}

#[test]
fn density_with_scratch_matches_golden_sequential_and_parallel() {
    for threads in [1, 0] {
        let mut gas = plummer_gas(N, 1.0, 3);
        let mut scratch = SphScratch::new();
        scratch.max_threads = threads;
        assert_eq!(
            compute_density_with(&mut gas, &mut scratch),
            GOLDEN_INTERACTIONS,
            "threads = {threads}"
        );
        check(&gas);
    }
}

#[test]
fn legacy_reference_still_matches_golden() {
    let mut gas = plummer_gas(N, 1.0, 3);
    assert_eq!(jc_sph::legacy::compute_density(&mut gas), GOLDEN_INTERACTIONS);
    check(&gas);
}
