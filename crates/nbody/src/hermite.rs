//! The 4th-order Hermite predictor–corrector integrator (PhiGRAPE).

use crate::kernels::{acc_jerk_into, eval_flops, Backend};
use crate::particle::ParticleSet;

/// Reusable per-integrator step buffers: saved state for the
/// predictor–corrector plus the force/jerk output slices. Held across
/// steps so the steady-state Hermite step performs no heap allocation
/// (with [`Backend::Scalar`]; the parallel backends allocate only
/// thread-spawn bookkeeping).
#[derive(Default)]
struct HermiteScratch {
    pos0: Vec<[f64; 3]>,
    vel0: Vec<[f64; 3]>,
    acc0: Vec<[f64; 3]>,
    jerk0: Vec<[f64; 3]>,
}

impl HermiteScratch {
    /// Validate/resize every buffer for `n` particles — called once per
    /// step (not per force evaluation).
    fn ensure(&mut self, n: usize) {
        self.pos0.resize(n, [0.0; 3]);
        self.vel0.resize(n, [0.0; 3]);
        self.acc0.resize(n, [0.0; 3]);
        self.jerk0.resize(n, [0.0; 3]);
    }
}

/// The PhiGRAPE-equivalent gravitational dynamics model.
///
/// Shared adaptive timestep (Aarseth criterion over the whole set),
/// Plummer softening, 4th-order Hermite scheme. All quantities in N-body
/// units (G = 1).
pub struct PhiGrape {
    /// The particles.
    pub particles: ParticleSet,
    /// Which force backend runs the N² loop.
    pub backend: Backend,
    /// Softening length squared.
    pub eps2: f64,
    /// Timestep accuracy parameter (0.01–0.02 typical).
    pub eta: f64,
    time: f64,
    acc: Vec<[f64; 3]>,
    jerk: Vec<[f64; 3]>,
    scratch: HermiteScratch,
    forces_valid: bool,
    /// Count of force evaluations (each is one N² pass), for the
    /// performance model.
    pub force_evals: u64,
    /// Accumulated modeled flops.
    pub flops: f64,
}

impl PhiGrape {
    /// Create an integrator over a particle set.
    pub fn new(particles: ParticleSet, backend: Backend) -> PhiGrape {
        PhiGrape {
            particles,
            backend,
            eps2: 1e-4,
            eta: 0.01,
            time: 0.0,
            acc: Vec::new(),
            jerk: Vec::new(),
            scratch: HermiteScratch::default(),
            forces_valid: false,
            force_evals: 0,
            flops: 0.0,
        }
    }

    /// Set softening length (not squared).
    pub fn with_softening(mut self, eps: f64) -> PhiGrape {
        self.eps2 = eps * eps;
        self
    }

    /// Set the timestep parameter.
    pub fn with_eta(mut self, eta: f64) -> PhiGrape {
        assert!(eta > 0.0 && eta < 1.0);
        self.eta = eta;
        self
    }

    /// Current model time (N-body units).
    pub fn model_time(&self) -> f64 {
        self.time
    }

    fn refresh_forces(&mut self) {
        let n = self.particles.len();
        self.acc.resize(n, [0.0; 3]);
        self.jerk.resize(n, [0.0; 3]);
        acc_jerk_into(
            self.backend,
            &self.particles.pos,
            &self.particles.vel,
            &self.particles.mass,
            &self.particles.pos,
            &self.particles.vel,
            self.eps2,
            true,
            &mut self.acc,
            &mut self.jerk,
        );
        self.force_evals += 1;
        self.flops += eval_flops(n, n);
        self.forces_valid = true;
    }

    /// Aarseth shared timestep from current acc/jerk.
    fn shared_dt(&self) -> f64 {
        let mut dt: f64 = 1.0e-2; // cap
        for (a, j) in self.acc.iter().zip(&self.jerk) {
            let an = (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt();
            let jn = (j[0] * j[0] + j[1] * j[1] + j[2] * j[2]).sqrt();
            if jn > 0.0 && an > 0.0 {
                dt = dt.min(self.eta * an / jn);
            }
        }
        dt.max(1.0e-8)
    }

    /// One Hermite step of size `dt`. Invalidates nothing; forces at the
    /// new time are kept for the next step. State is staged in the
    /// reusable scratch (lengths validated once here, not per force
    /// call), so the steady-state step allocates nothing.
    fn step(&mut self, dt: f64) {
        let n = self.particles.len();
        self.scratch.ensure(n);
        self.scratch.pos0.copy_from_slice(&self.particles.pos);
        self.scratch.vel0.copy_from_slice(&self.particles.vel);
        // the current forces become the step's t0 forces; refresh_forces
        // then overwrites acc/jerk in place at the predicted state
        std::mem::swap(&mut self.scratch.acc0, &mut self.acc);
        std::mem::swap(&mut self.scratch.jerk0, &mut self.jerk);

        // predictor
        for i in 0..n {
            let (pos0, vel0) = (&self.scratch.pos0, &self.scratch.vel0);
            let (acc0, jerk0) = (&self.scratch.acc0, &self.scratch.jerk0);
            for k in 0..3 {
                self.particles.pos[i][k] = pos0[i][k]
                    + vel0[i][k] * dt
                    + 0.5 * acc0[i][k] * dt * dt
                    + jerk0[i][k] * dt * dt * dt / 6.0;
                self.particles.vel[i][k] =
                    vel0[i][k] + acc0[i][k] * dt + 0.5 * jerk0[i][k] * dt * dt;
            }
        }
        // evaluate at predicted state
        self.refresh_forces();
        // corrector (Hermite 4th order, Makino form)
        for i in 0..n {
            let (pos0, vel0) = (&self.scratch.pos0, &self.scratch.vel0);
            let (acc0, jerk0) = (&self.scratch.acc0, &self.scratch.jerk0);
            for k in 0..3 {
                let (a0, a1) = (acc0[i][k], self.acc[i][k]);
                let (j0, j1) = (jerk0[i][k], self.jerk[i][k]);
                self.particles.vel[i][k] =
                    vel0[i][k] + 0.5 * (a0 + a1) * dt + (j0 - j1) * dt * dt / 12.0;
                self.particles.pos[i][k] = pos0[i][k]
                    + 0.5 * (vel0[i][k] + self.particles.vel[i][k]) * dt
                    + (a0 - a1) * dt * dt / 12.0;
            }
        }
        self.time += dt;
    }

    /// Evolve to absolute model time `t_end` (the AMUSE `evolve_model`
    /// call). Returns the number of steps taken.
    pub fn evolve_model(&mut self, t_end: f64) -> u64 {
        assert!(t_end + 1e-15 >= self.time, "cannot integrate backwards");
        if self.particles.is_empty() {
            self.time = t_end;
            return 0;
        }
        if !self.forces_valid {
            self.refresh_forces();
        }
        let mut steps = 0;
        while self.time < t_end - 1e-12 {
            let dt = self.shared_dt().min(t_end - self.time);
            self.step(dt);
            steps += 1;
            assert!(steps < 10_000_000, "timestep collapse");
        }
        steps
    }

    /// Overwrite the dynamical state from a checkpoint: replace the
    /// particle columns and set the model clock (which may move
    /// *backwards* — restoring rewinds). Cached forces are discarded, so
    /// the next [`PhiGrape::evolve_model`] refreshes them from the
    /// restored positions exactly as a freshly built integrator would —
    /// restoration is bitwise-transparent at any point where the force
    /// cache is already invalid (after a kick or a mass update, i.e.
    /// every bridge iteration boundary).
    pub fn restore_state(&mut self, particles: ParticleSet, time: f64) {
        self.particles = particles;
        self.time = time;
        self.forces_valid = false;
    }

    /// Apply external velocity kicks (BRIDGE coupling); invalidates the
    /// cached jerk consistency, so forces are refreshed on the next evolve.
    pub fn kick(&mut self, dv: &[[f64; 3]]) {
        self.particles.kick(dv);
        self.forces_valid = false;
    }

    /// Replace a particle's mass (stellar evolution feedback); forces are
    /// refreshed on the next evolve.
    pub fn set_mass(&mut self, i: usize, mass: f64) {
        assert!(mass.is_finite() && mass >= 0.0);
        self.particles.mass[i] = mass;
        self.forces_valid = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::total_energy;
    use crate::plummer::plummer_sphere;

    /// Circular two-body orbit: period 2π for a=1, M=1 (G=1).
    fn binary() -> ParticleSet {
        let mut s = ParticleSet::new();
        // masses 0.5 each, separation 1, circular velocity of each = 0.5·v_rel
        // v_rel = sqrt(M/a) = 1
        s.push(0.5, [-0.5, 0.0, 0.0], [0.0, -0.5, 0.0]);
        s.push(0.5, [0.5, 0.0, 0.0], [0.0, 0.5, 0.0]);
        s
    }

    #[test]
    fn binary_orbit_closes_after_a_period() {
        let mut g = PhiGrape::new(binary(), Backend::Scalar).with_softening(0.0).with_eta(0.005);
        let period = 2.0 * std::f64::consts::PI;
        g.evolve_model(period);
        // back near the start
        let p = &g.particles.pos;
        assert!((p[0][0] + 0.5).abs() < 2e-3, "x0 = {}", p[0][0]);
        assert!(p[0][1].abs() < 2e-3, "y0 = {}", p[0][1]);
    }

    #[test]
    fn energy_conserved_for_plummer_sphere() {
        let ics = plummer_sphere(64, 42);
        let mut g = PhiGrape::new(ics, Backend::CpuParallel).with_softening(0.01).with_eta(0.01);
        let e0 = total_energy(&g.particles, g.eps2);
        g.evolve_model(1.0);
        let e1 = total_energy(&g.particles, g.eps2);
        let drift = ((e1 - e0) / e0).abs();
        assert!(drift < 1e-3, "energy drift {drift}");
    }

    #[test]
    fn evolve_is_deterministic_across_backends() {
        let run = |b: Backend| {
            let ics = plummer_sphere(32, 7);
            let mut g = PhiGrape::new(ics, b).with_softening(0.01);
            g.evolve_model(0.25);
            g.particles.pos.clone()
        };
        assert_eq!(run(Backend::Scalar), run(Backend::CpuParallel));
        assert_eq!(run(Backend::Scalar), run(Backend::GpuModel));
    }

    #[test]
    fn kick_changes_momentum_and_invalidates_forces() {
        let mut g = PhiGrape::new(binary(), Backend::Scalar);
        g.evolve_model(0.1);
        let before = g.particles.vel[0];
        g.kick(&[[0.1, 0.0, 0.0], [0.0, 0.0, 0.0]]);
        assert!((g.particles.vel[0][0] - (before[0] + 0.1)).abs() < 1e-15);
        g.evolve_model(0.2); // must not panic; forces refreshed
    }

    #[test]
    fn empty_set_fast_forwards() {
        let mut g = PhiGrape::new(ParticleSet::new(), Backend::Scalar);
        assert_eq!(g.evolve_model(5.0), 0);
        assert_eq!(g.model_time(), 5.0);
    }

    #[test]
    fn flops_accumulate_with_steps() {
        let mut g = PhiGrape::new(binary(), Backend::Scalar);
        g.evolve_model(0.5);
        assert!(g.force_evals > 0);
        assert!(g.flops > 0.0);
    }

    #[test]
    #[should_panic]
    fn backwards_evolution_panics() {
        let mut g = PhiGrape::new(binary(), Backend::Scalar);
        g.evolve_model(1.0);
        g.evolve_model(0.5);
    }
}
