//! Initial conditions: Plummer spheres and a Salpeter IMF.
//!
//! AMUSE's "generating initial conditions" functionality (§4.1) for the
//! embedded-cluster experiment: a virialized Plummer sphere in standard
//! N-body units (total mass 1, virial radius 1, E = -1/4).

use crate::particle::ParticleSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Standard Hénon scaling: Plummer structural radius for virial radius 1.
const PLUMMER_A: f64 = 3.0 * std::f64::consts::PI / 16.0;

/// Sample an equal-mass, virialized Plummer sphere of `n` particles in
/// standard N-body units (deterministic for a given `seed`).
pub fn plummer_sphere(n: usize, seed: u64) -> ParticleSet {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = ParticleSet::with_capacity(n);
    let m = 1.0 / n as f64;
    for _ in 0..n {
        // radius from the cumulative mass profile
        let x: f64 = rng.gen_range(1e-10..1.0f64);
        let r = PLUMMER_A / (x.powf(-2.0 / 3.0) - 1.0).sqrt();
        let pos = iso_vector(&mut rng, r);
        // velocity from the local escape speed with the standard
        // rejection sampling of q = v/v_esc against g(q) = q²(1-q²)^3.5
        let v_esc = std::f64::consts::SQRT_2 * (1.0 + (r / PLUMMER_A).powi(2)).powf(-0.25)
            / PLUMMER_A.sqrt();
        let q = loop {
            let q: f64 = rng.gen_range(0.0..1.0);
            let y: f64 = rng.gen_range(0.0..0.1);
            if y < q * q * (1.0 - q * q).powf(3.5) {
                break q;
            }
        };
        let vel = iso_vector(&mut rng, q * v_esc);
        set.push(m, pos, vel);
    }
    set.to_com_frame();
    set
}

/// An isotropically oriented vector of length `r`.
fn iso_vector(rng: &mut StdRng, r: f64) -> [f64; 3] {
    let z: f64 = rng.gen_range(-1.0..1.0f64);
    let phi: f64 = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
    let s = (1.0 - z * z).sqrt();
    [r * s * phi.cos(), r * s * phi.sin(), r * z]
}

/// Sample `n` stellar masses (MSun) from a Salpeter IMF (dN/dm ∝ m^-2.35)
/// between `m_lo` and `m_hi`.
pub fn salpeter_imf(n: usize, m_lo: f64, m_hi: f64, seed: u64) -> Vec<f64> {
    assert!(n > 0 && m_lo > 0.0 && m_hi > m_lo);
    let mut rng = StdRng::seed_from_u64(seed);
    let alpha = -2.35;
    let a1 = alpha + 1.0;
    let lo = m_lo.powf(a1);
    let hi = m_hi.powf(a1);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            (lo + u * (hi - lo)).powf(1.0 / a1)
        })
        .collect()
}

/// Scale velocities so the set is exactly in virial equilibrium
/// (2T = -U) for softening `eps2`.
pub fn virialize(set: &mut ParticleSet, eps2: f64) {
    let ke = crate::diagnostics::kinetic_energy(set);
    let pe = crate::diagnostics::potential_energy(set, eps2);
    if ke <= 0.0 || pe >= 0.0 {
        return;
    }
    let target = -0.5 * pe;
    let f = (target / ke).sqrt();
    for v in &mut set.vel {
        for x in v {
            *x *= f;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::{kinetic_energy, potential_energy, virial_ratio};

    #[test]
    fn plummer_is_roughly_virial() {
        let s = plummer_sphere(512, 1);
        let q = virial_ratio(&s, 0.0);
        assert!((q - 0.5).abs() < 0.1, "virial ratio {q}");
    }

    #[test]
    fn plummer_total_mass_is_one() {
        let s = plummer_sphere(100, 2);
        assert!((s.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plummer_is_centered() {
        let s = plummer_sphere(256, 3);
        let c = s.center_of_mass();
        for x in c {
            assert!(x.abs() < 1e-12);
        }
    }

    #[test]
    fn plummer_deterministic_by_seed() {
        let a = plummer_sphere(64, 9);
        let b = plummer_sphere(64, 9);
        assert_eq!(a.pos, b.pos);
        let c = plummer_sphere(64, 10);
        assert_ne!(a.pos, c.pos);
    }

    #[test]
    fn virialize_hits_exact_equilibrium() {
        let mut s = plummer_sphere(128, 4);
        virialize(&mut s, 1e-4);
        let ke = kinetic_energy(&s);
        let pe = potential_energy(&s, 1e-4);
        assert!((2.0 * ke + pe).abs() < 1e-9 * pe.abs(), "2T+U = {}", 2.0 * ke + pe);
    }

    #[test]
    fn salpeter_masses_in_range_and_bottom_heavy() {
        let m = salpeter_imf(2000, 0.3, 60.0, 5);
        assert!(m.iter().all(|&x| (0.3..=60.0).contains(&x)));
        let below_1 = m.iter().filter(|&&x| x < 1.0).count();
        assert!(below_1 > 1200, "IMF is bottom-heavy: {below_1}/2000 below 1 MSun");
        // but some massive stars exist in a big draw
        assert!(m.iter().any(|&x| x > 8.0), "some stars explode later");
    }
}
