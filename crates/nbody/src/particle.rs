//! Particle storage (structure-of-arrays, N-body units).

/// A set of gravitating particles in dimensionless N-body units (G = 1).
///
/// Structure-of-arrays layout: the force loops stream over contiguous
/// `f64` arrays (perf-book: keep hot data dense and iterable).
#[derive(Clone, Debug, Default)]
pub struct ParticleSet {
    /// Masses.
    pub mass: Vec<f64>,
    /// Positions, xyz interleaved per particle.
    pub pos: Vec<[f64; 3]>,
    /// Velocities.
    pub vel: Vec<[f64; 3]>,
}

impl ParticleSet {
    /// Empty set.
    pub fn new() -> ParticleSet {
        ParticleSet::default()
    }

    /// With capacity.
    pub fn with_capacity(n: usize) -> ParticleSet {
        ParticleSet {
            mass: Vec::with_capacity(n),
            pos: Vec::with_capacity(n),
            vel: Vec::with_capacity(n),
        }
    }

    /// Add a particle; returns its index.
    pub fn push(&mut self, mass: f64, pos: [f64; 3], vel: [f64; 3]) -> usize {
        assert!(mass.is_finite() && mass >= 0.0, "bad mass {mass}");
        self.mass.push(mass);
        self.pos.push(pos);
        self.vel.push(vel);
        self.mass.len() - 1
    }

    /// Copy of the contiguous particle range `[start, end)` — the
    /// shard-worker slice (every column cut identically).
    pub fn slice(&self, start: usize, end: usize) -> ParticleSet {
        ParticleSet {
            mass: self.mass[start..end].to_vec(),
            pos: self.pos[start..end].to_vec(),
            vel: self.vel[start..end].to_vec(),
        }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.mass.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.mass.is_empty()
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Center of mass position.
    pub fn center_of_mass(&self) -> [f64; 3] {
        let mut c = [0.0; 3];
        let mt = self.total_mass();
        if mt == 0.0 {
            return c;
        }
        for (m, p) in self.mass.iter().zip(&self.pos) {
            for k in 0..3 {
                c[k] += m * p[k];
            }
        }
        for ck in &mut c {
            *ck /= mt;
        }
        c
    }

    /// Center-of-mass velocity.
    pub fn com_velocity(&self) -> [f64; 3] {
        let mut c = [0.0; 3];
        let mt = self.total_mass();
        if mt == 0.0 {
            return c;
        }
        for (m, v) in self.mass.iter().zip(&self.vel) {
            for k in 0..3 {
                c[k] += m * v[k];
            }
        }
        for ck in &mut c {
            *ck /= mt;
        }
        c
    }

    /// Shift to the center-of-mass frame (position and velocity).
    pub fn to_com_frame(&mut self) {
        let c = self.center_of_mass();
        let cv = self.com_velocity();
        for p in &mut self.pos {
            for k in 0..3 {
                p[k] -= c[k];
            }
        }
        for v in &mut self.vel {
            for k in 0..3 {
                v[k] -= cv[k];
            }
        }
    }

    /// Apply velocity kicks: `vel[i] += dv[i]` (the BRIDGE coupling
    /// operation).
    pub fn kick(&mut self, dv: &[[f64; 3]]) {
        assert_eq!(dv.len(), self.len(), "kick size mismatch");
        for (v, d) in self.vel.iter_mut().zip(dv) {
            for k in 0..3 {
                v[k] += d[k];
            }
        }
    }

    /// Remove a particle by swap-remove (order not preserved; O(1)).
    pub fn swap_remove(&mut self, i: usize) {
        self.mass.swap_remove(i);
        self.pos.swap_remove(i);
        self.vel.swap_remove(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_totals() {
        let mut s = ParticleSet::new();
        s.push(1.0, [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]);
        s.push(3.0, [-1.0, 0.0, 0.0], [0.0, -1.0, 0.0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_mass(), 4.0);
        let c = s.center_of_mass();
        assert!((c[0] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn com_frame_zeroes_momenta() {
        let mut s = ParticleSet::new();
        s.push(1.0, [1.0, 2.0, 3.0], [0.5, 0.0, 0.0]);
        s.push(2.0, [0.0, 0.0, 0.0], [0.0, 0.25, 0.0]);
        s.to_com_frame();
        let c = s.center_of_mass();
        let cv = s.com_velocity();
        for k in 0..3 {
            assert!(c[k].abs() < 1e-12);
            assert!(cv[k].abs() < 1e-12);
        }
    }

    #[test]
    fn kick_adds_velocity() {
        let mut s = ParticleSet::new();
        s.push(1.0, [0.0; 3], [1.0, 0.0, 0.0]);
        s.kick(&[[0.0, 2.0, 0.0]]);
        assert_eq!(s.vel[0], [1.0, 2.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn kick_size_mismatch_panics() {
        let mut s = ParticleSet::new();
        s.push(1.0, [0.0; 3], [0.0; 3]);
        s.kick(&[]);
    }

    #[test]
    #[should_panic]
    fn negative_mass_rejected() {
        let mut s = ParticleSet::new();
        s.push(-1.0, [0.0; 3], [0.0; 3]);
    }
}
