//! Energy, angular momentum and structure diagnostics.

use crate::kernels::potential;
use crate::particle::ParticleSet;

/// Kinetic energy `Σ ½ m v²`.
pub fn kinetic_energy(set: &ParticleSet) -> f64 {
    set.mass
        .iter()
        .zip(&set.vel)
        .map(|(m, v)| 0.5 * m * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
        .sum()
}

/// Potential energy `½ Σ m φ` with softening.
pub fn potential_energy(set: &ParticleSet, eps2: f64) -> f64 {
    let phi = potential(&set.pos, &set.mass, &set.pos, eps2, true);
    0.5 * phi.iter().zip(&set.mass).map(|(p, m)| p * m).sum::<f64>()
}

/// Total energy.
pub fn total_energy(set: &ParticleSet, eps2: f64) -> f64 {
    kinetic_energy(set) + potential_energy(set, eps2)
}

/// Virial ratio `Q = T / |U|` (0.5 in equilibrium).
pub fn virial_ratio(set: &ParticleSet, eps2: f64) -> f64 {
    let u = potential_energy(set, eps2);
    if u == 0.0 {
        return f64::INFINITY;
    }
    kinetic_energy(set) / u.abs()
}

/// Total angular momentum vector.
pub fn angular_momentum(set: &ParticleSet) -> [f64; 3] {
    let mut l = [0.0; 3];
    for ((m, p), v) in set.mass.iter().zip(&set.pos).zip(&set.vel) {
        l[0] += m * (p[1] * v[2] - p[2] * v[1]);
        l[1] += m * (p[2] * v[0] - p[0] * v[2]);
        l[2] += m * (p[0] * v[1] - p[1] * v[0]);
    }
    l
}

/// Lagrangian radius enclosing `fraction` of the total mass, measured from
/// the center of mass.
pub fn lagrangian_radius(set: &ParticleSet, fraction: f64) -> f64 {
    assert!((0.0..=1.0).contains(&fraction));
    if set.is_empty() {
        return 0.0;
    }
    let c = set.center_of_mass();
    let mut r_m: Vec<(f64, f64)> = set
        .pos
        .iter()
        .zip(&set.mass)
        .map(|(p, m)| {
            let d = [(p[0] - c[0]), (p[1] - c[1]), (p[2] - c[2])];
            ((d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt(), *m)
        })
        .collect();
    r_m.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let target = fraction * set.total_mass();
    let mut acc = 0.0;
    for (r, m) in r_m {
        acc += m;
        if acc >= target {
            return r;
        }
    }
    f64::INFINITY
}

/// Half-mass radius.
pub fn half_mass_radius(set: &ParticleSet) -> f64 {
    lagrangian_radius(set, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> ParticleSet {
        let mut s = ParticleSet::new();
        s.push(1.0, [-0.5, 0.0, 0.0], [0.0, -0.5, 0.0]);
        s.push(1.0, [0.5, 0.0, 0.0], [0.0, 0.5, 0.0]);
        s
    }

    #[test]
    fn energies_of_a_pair() {
        let s = pair();
        assert!((kinetic_energy(&s) - 0.25).abs() < 1e-12);
        assert!((potential_energy(&s, 0.0) + 1.0).abs() < 1e-12);
        assert!((total_energy(&s, 0.0) + 0.75).abs() < 1e-12);
    }

    #[test]
    fn angular_momentum_of_rotating_pair() {
        let s = pair();
        let l = angular_momentum(&s);
        assert!((l[2] - 0.5).abs() < 1e-12, "Lz = {}", l[2]);
        assert!(l[0].abs() < 1e-15 && l[1].abs() < 1e-15);
    }

    #[test]
    fn lagrangian_radii_are_monotone() {
        let s = crate::plummer::plummer_sphere(256, 11);
        let r10 = lagrangian_radius(&s, 0.1);
        let r50 = lagrangian_radius(&s, 0.5);
        let r90 = lagrangian_radius(&s, 0.9);
        assert!(r10 < r50 && r50 < r90, "{r10} {r50} {r90}");
        assert_eq!(half_mass_radius(&s), r50);
    }

    #[test]
    fn empty_set_edge_cases() {
        let s = ParticleSet::new();
        assert_eq!(kinetic_energy(&s), 0.0);
        assert_eq!(lagrangian_radius(&s, 0.5), 0.0);
    }
}
