//! Force/jerk computation backends (the "multi-kernel" in multi-kernel).

use jc_compute::par;
use jc_compute::soa::{reduce_lanes, SoaBodies, LANES};
use std::cell::RefCell;

/// Floating-point operations per pairwise force+jerk interaction, used by
/// the jungle performance model (counted from the inner loop below:
/// ~60 flops including the rsqrt).
pub const FLOPS_PER_PAIR: f64 = 60.0;

/// Which implementation computes the forces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Single-core reference loop.
    Scalar,
    /// Thread-parallel over targets (the CPU kernel). Same arithmetic as
    /// [`Backend::Scalar`], bitwise identical results.
    CpuParallel,
    /// Same arithmetic as `CpuParallel`; the jungle simulator charges its
    /// cost to a GPU device model instead of CPU cores.
    GpuModel,
    /// Structure-of-arrays compute path: sources mirrored into aligned
    /// `x/y/z/m` columns ([`jc_compute::soa`]) and accumulated in
    /// [`LANES`]-wide lane arrays with a fixed pairwise reduction order.
    /// Bitwise run-to-run stable and independent of the worker-thread
    /// count, but *not* bitwise equal to the scalar backends (sources
    /// are summed lane-by-lane instead of strictly in order); it carries
    /// its own golden vectors plus tolerance-bounded property tests.
    SimdSoa,
}

thread_local! {
    /// Reusable SoA mirror of the source set for [`Backend::SimdSoa`]
    /// (thread-local: the coupler may drive several models from
    /// different threads at once). Steady-state refills allocate
    /// nothing once capacity is warm.
    static SOA_SOURCES: RefCell<SoaBodies> = RefCell::new(SoaBodies::new());
}

/// Accelerations and jerks for all `targets` due to all `sources`
/// (which may be the same set; self-interaction is skipped by index when
/// `same_set` is true).
///
/// Returns `(acc, jerk)`. Allocating convenience wrapper over
/// [`acc_jerk_into`]; hot callers hold the output buffers across steps.
#[allow(clippy::too_many_arguments)]
pub fn acc_jerk(
    backend: Backend,
    t_pos: &[[f64; 3]],
    t_vel: &[[f64; 3]],
    s_mass: &[f64],
    s_pos: &[[f64; 3]],
    s_vel: &[[f64; 3]],
    eps2: f64,
    same_set: bool,
) -> (Vec<[f64; 3]>, Vec<[f64; 3]>) {
    let n = t_pos.len();
    let mut acc = vec![[0.0; 3]; n];
    let mut jerk = vec![[0.0; 3]; n];
    acc_jerk_into(backend, t_pos, t_vel, s_mass, s_pos, s_vel, eps2, same_set, &mut acc, &mut jerk);
    (acc, jerk)
}

/// Minimum targets per worker thread before the parallel backends fan
/// out to scoped threads.
const PAR_GRAIN: usize = 64;

/// [`acc_jerk`] writing into caller-provided slices (`acc.len() ==
/// jerk.len() == t_pos.len()`, validated once per call) — the
/// zero-allocation steady-state path for [`Backend::Scalar`] and, once
/// its thread-local SoA mirror is warm, for [`Backend::SimdSoa`] below
/// the parallel grain. The parallel backends write each target's row in
/// place from scoped worker threads and allocate only thread-spawn
/// bookkeeping.
///
/// Determinism: the accumulation over sources is sequential within each
/// target for `Scalar`/`CpuParallel`/`GpuModel`, so those three produce
/// bitwise identical results for any worker count (property-tested).
/// `SimdSoa` is bitwise stable run-to-run and across worker counts, but
/// matches the scalar backends only to rounding (lane-wise summation);
/// see [`Backend::SimdSoa`].
// jc-lint: no-alloc
#[allow(clippy::too_many_arguments)]
pub fn acc_jerk_into(
    backend: Backend,
    t_pos: &[[f64; 3]],
    t_vel: &[[f64; 3]],
    s_mass: &[f64],
    s_pos: &[[f64; 3]],
    s_vel: &[[f64; 3]],
    eps2: f64,
    same_set: bool,
    acc: &mut [[f64; 3]],
    jerk: &mut [[f64; 3]],
) {
    let n = t_pos.len();
    assert_eq!(acc.len(), n, "acc buffer length mismatch");
    assert_eq!(jerk.len(), n, "jerk buffer length mismatch");
    let one = |i: usize, a: &mut [f64; 3], j: &mut [f64; 3]| {
        let pi = t_pos[i];
        let vi = t_vel[i];
        *a = [0.0f64; 3];
        *j = [0.0f64; 3];
        for (jj, (&mj, (pj, vj))) in s_mass.iter().zip(s_pos.iter().zip(s_vel)).enumerate() {
            if same_set && jj == i {
                continue;
            }
            let dx = [pj[0] - pi[0], pj[1] - pi[1], pj[2] - pi[2]];
            let dv = [vj[0] - vi[0], vj[1] - vi[1], vj[2] - vi[2]];
            let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + eps2;
            let r = r2.sqrt();
            let inv_r3 = 1.0 / (r2 * r);
            let rv = dx[0] * dv[0] + dx[1] * dv[1] + dx[2] * dv[2];
            let alpha = 3.0 * rv / r2;
            for k in 0..3 {
                a[k] += mj * dx[k] * inv_r3;
                j[k] += mj * (dv[k] - alpha * dx[k]) * inv_r3;
            }
        }
    };

    match backend {
        Backend::Scalar => {
            for (i, (a, j)) in acc.iter_mut().zip(jerk.iter_mut()).enumerate() {
                one(i, a, j);
            }
        }
        Backend::CpuParallel | Backend::GpuModel => {
            let workers = par::threads_for(n, 0, PAR_GRAIN);
            // jc-lint: allow(no-alloc): Vec of ZSTs — capacity math never touches the heap
            let mut units = vec![(); workers];
            par::chunked(
                workers,
                (acc, jerk),
                &mut units,
                (),
                |s0, (ac, jc), _| {
                    for (k, (a, j)) in ac.iter_mut().zip(jc.iter_mut()).enumerate() {
                        one(s0 + k, a, j);
                    }
                },
                |(), ()| (),
            );
        }
        Backend::SimdSoa => SOA_SOURCES.with(|cell| {
            let mut soa = cell.borrow_mut();
            soa.fill_from(s_mass, s_pos, s_vel);
            let soa = &*soa;
            let workers = par::threads_for(n, 0, PAR_GRAIN);
            // jc-lint: allow(no-alloc): Vec of ZSTs — capacity math never touches the heap
            let mut units = vec![(); workers];
            par::chunked(
                workers,
                (acc, jerk),
                &mut units,
                (),
                |s0, (ac, jc), _| {
                    acc_jerk_simd_chunk(s0, t_pos, t_vel, soa, eps2, same_set, ac, jc);
                },
                |(), ()| (),
            );
        }),
    }
}

/// One worker chunk of [`Backend::SimdSoa`] targets, dispatched once per
/// chunk to the widest available instruction set.
///
/// rustc compiles for baseline x86-64 (SSE2) by default, which caps the
/// packed `sqrt`/`div` the lane loop turns into at 2 doubles; the AVX2
/// clone of the same body runs them 4 wide. Both clones execute the
/// *identical* sequence of IEEE operations (no fast-math, no fused
/// multiply-add contraction), so results are bitwise identical across
/// the dispatch — the golden vectors hold on any machine.
#[allow(clippy::too_many_arguments)]
fn acc_jerk_simd_chunk(
    s0: usize,
    t_pos: &[[f64; 3]],
    t_vel: &[[f64; 3]],
    src: &SoaBodies,
    eps2: f64,
    same_set: bool,
    ac: &mut [[f64; 3]],
    jc: &mut [[f64; 3]],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 clone is only reached when the CPU reports
        // the feature at runtime.
        return unsafe { acc_jerk_simd_chunk_avx2(s0, t_pos, t_vel, src, eps2, same_set, ac, jc) };
    }
    acc_jerk_simd_chunk_body(s0, t_pos, t_vel, src, eps2, same_set, ac, jc);
}

/// AVX2 implementation of [`acc_jerk_simd_chunk_body`]: the identical
/// sequence of IEEE operations, written as explicit 4-wide packed
/// intrinsics (the auto-vectorizer settles for 128-bit SLP on this
/// body, leaving half the `sqrt`/`div` throughput on the table). The
/// self-interaction mask compares an exact-integer f64 index vector
/// against the target index — lanes that match get mass 0 and divisor
/// 1, exactly like the scalar select — so results stay bitwise equal to
/// the portable body.
// SAFETY: `#[target_feature(enable = "avx2")]` makes this fn unsafe to
// call; the only call site is gated on `is_x86_feature_detected!("avx2")`,
// so the AVX2 instructions are never executed on a CPU without them.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn acc_jerk_simd_chunk_avx2(
    s0: usize,
    t_pos: &[[f64; 3]],
    t_vel: &[[f64; 3]],
    src: &SoaBodies,
    eps2: f64,
    same_set: bool,
    ac: &mut [[f64; 3]],
    jc: &mut [[f64; 3]],
) {
    use std::arch::x86_64::*;
    let (sx, sy, sz) = (src.pos.x.as_slice(), src.pos.y.as_slice(), src.pos.z.as_slice());
    let (svx, svy, svz) = (src.vel.x.as_slice(), src.vel.y.as_slice(), src.vel.z.as_slice());
    let sm = src.mass.as_slice();
    let n = sm.len();
    let batches = n / LANES;
    // SAFETY: every `_mm256_load_pd(ptr.add(o))` reads LANES f64s at
    // offset `o = b * LANES` with `b < n / LANES`, so `o + LANES <= n`
    // stays in bounds of each SoA slice (`SoaBodies` keeps all columns
    // equal length). The aligned load's 32-byte requirement holds
    // because `AlignedF64` storage is 64-byte (cache-line) aligned and
    // `o` is a multiple of LANES = 4 (4 × 8 bytes = 32). The `storeu`
    // spills target local stack arrays, and the AVX2 intrinsics
    // themselves are available per the `#[target_feature]` contract
    // discharged at the call site.
    unsafe {
        let eps2v = _mm256_set1_pd(eps2);
        let ones = _mm256_set1_pd(1.0);
        let three = _mm256_set1_pd(3.0);
        let step = _mm256_set1_pd(LANES as f64);
        for (k, (a, j)) in ac.iter_mut().zip(jc.iter_mut()).enumerate() {
            let i = s0 + k;
            let [pix, piy, piz] = t_pos[i];
            let [vix, viy, viz] = t_vel[i];
            let (pxv, pyv, pzv) = (_mm256_set1_pd(pix), _mm256_set1_pd(piy), _mm256_set1_pd(piz));
            let (vxv, vyv, vzv) = (_mm256_set1_pd(vix), _mm256_set1_pd(viy), _mm256_set1_pd(viz));
            // lane indices as exact-integer f64s; a never-matching
            // sentinel turns the self-mask off for cross-set sums
            let iv = _mm256_set1_pd(if same_set { i as f64 } else { -1.0 });
            let mut idx = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
            let mut axv = _mm256_setzero_pd();
            let mut ayv = _mm256_setzero_pd();
            let mut azv = _mm256_setzero_pd();
            let mut jxv = _mm256_setzero_pd();
            let mut jyv = _mm256_setzero_pd();
            let mut jzv = _mm256_setzero_pd();
            for b in 0..batches {
                let o = b * LANES;
                let dx = _mm256_sub_pd(_mm256_load_pd(sx.as_ptr().add(o)), pxv);
                let dy = _mm256_sub_pd(_mm256_load_pd(sy.as_ptr().add(o)), pyv);
                let dz = _mm256_sub_pd(_mm256_load_pd(sz.as_ptr().add(o)), pzv);
                let dvx = _mm256_sub_pd(_mm256_load_pd(svx.as_ptr().add(o)), vxv);
                let dvy = _mm256_sub_pd(_mm256_load_pd(svy.as_ptr().add(o)), vyv);
                let dvz = _mm256_sub_pd(_mm256_load_pd(svz.as_ptr().add(o)), vzv);
                let r2 = _mm256_add_pd(
                    _mm256_add_pd(
                        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
                        _mm256_mul_pd(dz, dz),
                    ),
                    eps2v,
                );
                let mask = _mm256_cmp_pd::<_CMP_EQ_OQ>(idx, iv);
                idx = _mm256_add_pd(idx, step);
                let m = _mm256_andnot_pd(mask, _mm256_load_pd(sm.as_ptr().add(o)));
                let r2g = _mm256_blendv_pd(r2, ones, mask);
                let inv_r = _mm256_div_pd(ones, _mm256_sqrt_pd(r2g));
                let inv_r2 = _mm256_mul_pd(inv_r, inv_r);
                let inv_r3 = _mm256_mul_pd(inv_r2, inv_r);
                let rv = _mm256_add_pd(
                    _mm256_add_pd(_mm256_mul_pd(dx, dvx), _mm256_mul_pd(dy, dvy)),
                    _mm256_mul_pd(dz, dvz),
                );
                let alpha = _mm256_mul_pd(_mm256_mul_pd(three, rv), inv_r2);
                let mir3 = _mm256_mul_pd(m, inv_r3);
                axv = _mm256_add_pd(axv, _mm256_mul_pd(mir3, dx));
                ayv = _mm256_add_pd(ayv, _mm256_mul_pd(mir3, dy));
                azv = _mm256_add_pd(azv, _mm256_mul_pd(mir3, dz));
                jxv = _mm256_add_pd(
                    jxv,
                    _mm256_mul_pd(mir3, _mm256_sub_pd(dvx, _mm256_mul_pd(alpha, dx))),
                );
                jyv = _mm256_add_pd(
                    jyv,
                    _mm256_mul_pd(mir3, _mm256_sub_pd(dvy, _mm256_mul_pd(alpha, dy))),
                );
                jzv = _mm256_add_pd(
                    jzv,
                    _mm256_mul_pd(mir3, _mm256_sub_pd(dvz, _mm256_mul_pd(alpha, dz))),
                );
            }
            let (mut axl, mut ayl, mut azl) = ([0.0f64; LANES], [0.0f64; LANES], [0.0f64; LANES]);
            let (mut jxl, mut jyl, mut jzl) = ([0.0f64; LANES], [0.0f64; LANES], [0.0f64; LANES]);
            _mm256_storeu_pd(axl.as_mut_ptr(), axv);
            _mm256_storeu_pd(ayl.as_mut_ptr(), ayv);
            _mm256_storeu_pd(azl.as_mut_ptr(), azv);
            _mm256_storeu_pd(jxl.as_mut_ptr(), jxv);
            _mm256_storeu_pd(jyl.as_mut_ptr(), jyv);
            _mm256_storeu_pd(jzl.as_mut_ptr(), jzv);
            let o = batches * LANES;
            for jj in o..n {
                let l = jj - o;
                let dx = sx[jj] - pix;
                let dy = sy[jj] - piy;
                let dz = sz[jj] - piz;
                let dvx = svx[jj] - vix;
                let dvy = svy[jj] - viy;
                let dvz = svz[jj] - viz;
                let r2 = dx * dx + dy * dy + dz * dz + eps2;
                let (m, r2g) = if same_set && jj == i { (0.0, 1.0) } else { (sm[jj], r2) };
                let inv_r = 1.0 / r2g.sqrt();
                let inv_r2 = inv_r * inv_r;
                let inv_r3 = inv_r2 * inv_r;
                let rv = dx * dvx + dy * dvy + dz * dvz;
                let alpha = 3.0 * rv * inv_r2;
                let mir3 = m * inv_r3;
                axl[l] += mir3 * dx;
                ayl[l] += mir3 * dy;
                azl[l] += mir3 * dz;
                jxl[l] += mir3 * (dvx - alpha * dx);
                jyl[l] += mir3 * (dvy - alpha * dy);
                jzl[l] += mir3 * (dvz - alpha * dz);
            }
            *a = [reduce_lanes(axl), reduce_lanes(ayl), reduce_lanes(azl)];
            *j = [reduce_lanes(jxl), reduce_lanes(jyl), reduce_lanes(jzl)];
        }
    }
}

/// The [`Backend::SimdSoa`] inner loops: for each target in the chunk,
/// scan the SoA source columns in batches of [`LANES`], lane `l` of a
/// batch accumulating source `o + l`; the `< LANES` tail lands in lanes
/// `0..tail`, and the accumulators are reduced with [`reduce_lanes`].
/// The batch body is branch-free (the `same_set` self-interaction is
/// masked by zeroing the mass and guarding the divisor) and reads the
/// columns through fixed-size array refs, so the compiler lowers it to
/// packed loads, `sqrt`s and `div`s over the aligned columns.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn acc_jerk_simd_chunk_body(
    s0: usize,
    t_pos: &[[f64; 3]],
    t_vel: &[[f64; 3]],
    src: &SoaBodies,
    eps2: f64,
    same_set: bool,
    ac: &mut [[f64; 3]],
    jc: &mut [[f64; 3]],
) {
    let (sx, sy, sz) = (src.pos.x.as_slice(), src.pos.y.as_slice(), src.pos.z.as_slice());
    let (svx, svy, svz) = (src.vel.x.as_slice(), src.vel.y.as_slice(), src.vel.z.as_slice());
    let sm = src.mass.as_slice();
    let n = sm.len();
    let batches = n / LANES;
    for (k, (a, j)) in ac.iter_mut().zip(jc.iter_mut()).enumerate() {
        let i = s0 + k;
        let [pix, piy, piz] = t_pos[i];
        let [vix, viy, viz] = t_vel[i];
        let (mut axl, mut ayl, mut azl) = ([0.0f64; LANES], [0.0f64; LANES], [0.0f64; LANES]);
        let (mut jxl, mut jyl, mut jzl) = ([0.0f64; LANES], [0.0f64; LANES], [0.0f64; LANES]);
        // One lane of the whole scan is the self-interaction (at most):
        // keep the hot batch body select-free and route only the batch
        // containing `i` through the masked variant.
        macro_rules! lane {
            ($l:expr, $o:expr, $xs:expr, $ys:expr, $zs:expr, $vxs:expr, $vys:expr, $vzs:expr,
             $ms:expr, $masked:expr) => {{
                let l = $l;
                let dx = $xs[l] - pix;
                let dy = $ys[l] - piy;
                let dz = $zs[l] - piz;
                let dvx = $vxs[l] - vix;
                let dvy = $vys[l] - viy;
                let dvz = $vzs[l] - viz;
                let r2 = dx * dx + dy * dy + dz * dz + eps2;
                let (m, r2g) = if $masked && $o + l == i { (0.0, 1.0) } else { ($ms[l], r2) };
                let inv_r = 1.0 / r2g.sqrt();
                let inv_r2 = inv_r * inv_r;
                let inv_r3 = inv_r2 * inv_r;
                let rv = dx * dvx + dy * dvy + dz * dvz;
                let alpha = 3.0 * rv * inv_r2;
                let mir3 = m * inv_r3;
                axl[l] += mir3 * dx;
                ayl[l] += mir3 * dy;
                azl[l] += mir3 * dz;
                jxl[l] += mir3 * (dvx - alpha * dx);
                jyl[l] += mir3 * (dvy - alpha * dy);
                jzl[l] += mir3 * (dvz - alpha * dz);
            }};
        }
        for b in 0..batches {
            let o = b * LANES;
            let xs: &[f64; LANES] = sx[o..o + LANES].try_into().unwrap();
            let ys: &[f64; LANES] = sy[o..o + LANES].try_into().unwrap();
            let zs: &[f64; LANES] = sz[o..o + LANES].try_into().unwrap();
            let vxs: &[f64; LANES] = svx[o..o + LANES].try_into().unwrap();
            let vys: &[f64; LANES] = svy[o..o + LANES].try_into().unwrap();
            let vzs: &[f64; LANES] = svz[o..o + LANES].try_into().unwrap();
            let ms: &[f64; LANES] = sm[o..o + LANES].try_into().unwrap();
            if same_set && i.wrapping_sub(o) < LANES {
                for l in 0..LANES {
                    lane!(l, o, xs, ys, zs, vxs, vys, vzs, ms, true);
                }
            } else {
                for l in 0..LANES {
                    lane!(l, o, xs, ys, zs, vxs, vys, vzs, ms, false);
                }
            }
        }
        {
            let o = batches * LANES;
            for jj in o..n {
                lane!(
                    jj - o,
                    o,
                    &sx[o..],
                    &sy[o..],
                    &sz[o..],
                    &svx[o..],
                    &svy[o..],
                    &svz[o..],
                    &sm[o..],
                    same_set
                );
            }
        }
        *a = [reduce_lanes(axl), reduce_lanes(ayl), reduce_lanes(azl)];
        *j = [reduce_lanes(jxl), reduce_lanes(jyl), reduce_lanes(jzl)];
    }
}

/// Gravitational potential of each target due to the sources (for energy
/// diagnostics). G = 1. Allocating convenience wrapper over
/// [`potential_into`] with the [`Backend::CpuParallel`] backend.
pub fn potential(
    t_pos: &[[f64; 3]],
    s_mass: &[f64],
    s_pos: &[[f64; 3]],
    eps2: f64,
    same_set: bool,
) -> Vec<f64> {
    let mut phi = vec![0.0; t_pos.len()];
    potential_into(Backend::CpuParallel, t_pos, s_mass, s_pos, eps2, same_set, &mut phi);
    phi
}

/// Gravitational potential of each target written into `phi`
/// (`phi.len() == t_pos.len()`). The scalar backends accumulate
/// sequentially over sources (bitwise identical to each other, any
/// worker count); [`Backend::SimdSoa`] uses the [`LANES`]-wide lane
/// accumulators with the fixed [`reduce_lanes`] order.
// jc-lint: no-alloc
pub fn potential_into(
    backend: Backend,
    t_pos: &[[f64; 3]],
    s_mass: &[f64],
    s_pos: &[[f64; 3]],
    eps2: f64,
    same_set: bool,
    phi: &mut [f64],
) {
    let n = t_pos.len();
    assert_eq!(phi.len(), n, "phi buffer length mismatch");
    let one = |i: usize, out: &mut f64| {
        let pi = t_pos[i];
        let mut phi = 0.0;
        for (jj, (&mj, pj)) in s_mass.iter().zip(s_pos).enumerate() {
            if same_set && jj == i {
                continue;
            }
            let dx = [pj[0] - pi[0], pj[1] - pi[1], pj[2] - pi[2]];
            let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + eps2;
            phi -= mj / r2.sqrt();
        }
        *out = phi;
    };
    match backend {
        Backend::Scalar => {
            for (i, out) in phi.iter_mut().enumerate() {
                one(i, out);
            }
        }
        Backend::CpuParallel | Backend::GpuModel => {
            let workers = par::threads_for(n, 0, PAR_GRAIN);
            // jc-lint: allow(no-alloc): Vec of ZSTs — capacity math never touches the heap
            let mut units = vec![(); workers];
            par::chunked(
                workers,
                &mut *phi,
                &mut units,
                (),
                |s0, chunk: &mut [f64], _| {
                    for (k, out) in chunk.iter_mut().enumerate() {
                        one(s0 + k, out);
                    }
                },
                |(), ()| (),
            );
        }
        Backend::SimdSoa => SOA_SOURCES.with(|cell| {
            let mut soa = cell.borrow_mut();
            soa.fill_from_positions(s_mass, s_pos);
            let soa = &*soa;
            let workers = par::threads_for(n, 0, PAR_GRAIN);
            // jc-lint: allow(no-alloc): Vec of ZSTs — capacity math never touches the heap
            let mut units = vec![(); workers];
            par::chunked(
                workers,
                &mut *phi,
                &mut units,
                (),
                |s0, chunk: &mut [f64], _| {
                    potential_simd_chunk(s0, t_pos, soa, eps2, same_set, chunk);
                },
                |(), ()| (),
            );
        }),
    }
}

/// One worker chunk of [`Backend::SimdSoa`] potential targets —
/// dispatched like [`acc_jerk_simd_chunk`], identical results across
/// the dispatch.
fn potential_simd_chunk(
    s0: usize,
    t_pos: &[[f64; 3]],
    src: &SoaBodies,
    eps2: f64,
    same_set: bool,
    phi: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 clone is only reached when the CPU reports
        // the feature at runtime.
        return unsafe { potential_simd_chunk_avx2(s0, t_pos, src, eps2, same_set, phi) };
    }
    potential_simd_chunk_body(s0, t_pos, src, eps2, same_set, phi);
}

/// AVX2 implementation of [`potential_simd_chunk_body`] — explicit
/// packed intrinsics mirroring the portable body op for op (see
/// [`acc_jerk_simd_chunk_avx2`] for the masking scheme), bitwise equal
/// results.
// SAFETY: `#[target_feature(enable = "avx2")]` makes this fn unsafe to
// call; the only call site is gated on `is_x86_feature_detected!("avx2")`,
// so the AVX2 instructions are never executed on a CPU without them.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn potential_simd_chunk_avx2(
    s0: usize,
    t_pos: &[[f64; 3]],
    src: &SoaBodies,
    eps2: f64,
    same_set: bool,
    phi: &mut [f64],
) {
    use std::arch::x86_64::*;
    let (sx, sy, sz) = (src.pos.x.as_slice(), src.pos.y.as_slice(), src.pos.z.as_slice());
    let sm = src.mass.as_slice();
    let n = sm.len();
    let batches = n / LANES;
    // SAFETY: same argument as `acc_jerk_simd_chunk_avx2` — aligned
    // loads read `o + LANES <= n` elements of equal-length, 64-byte-
    // aligned SoA columns at 32-byte-multiple offsets; the feature
    // contract is discharged at the detection-gated call site.
    unsafe {
        let eps2v = _mm256_set1_pd(eps2);
        let ones = _mm256_set1_pd(1.0);
        let step = _mm256_set1_pd(LANES as f64);
        for (k, out) in phi.iter_mut().enumerate() {
            let i = s0 + k;
            let [pix, piy, piz] = t_pos[i];
            let (pxv, pyv, pzv) = (_mm256_set1_pd(pix), _mm256_set1_pd(piy), _mm256_set1_pd(piz));
            let iv = _mm256_set1_pd(if same_set { i as f64 } else { -1.0 });
            let mut idx = _mm256_setr_pd(0.0, 1.0, 2.0, 3.0);
            let mut pv = _mm256_setzero_pd();
            for b in 0..batches {
                let o = b * LANES;
                let dx = _mm256_sub_pd(_mm256_load_pd(sx.as_ptr().add(o)), pxv);
                let dy = _mm256_sub_pd(_mm256_load_pd(sy.as_ptr().add(o)), pyv);
                let dz = _mm256_sub_pd(_mm256_load_pd(sz.as_ptr().add(o)), pzv);
                let r2 = _mm256_add_pd(
                    _mm256_add_pd(
                        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
                        _mm256_mul_pd(dz, dz),
                    ),
                    eps2v,
                );
                let mask = _mm256_cmp_pd::<_CMP_EQ_OQ>(idx, iv);
                idx = _mm256_add_pd(idx, step);
                let m = _mm256_andnot_pd(mask, _mm256_load_pd(sm.as_ptr().add(o)));
                let r2g = _mm256_blendv_pd(r2, ones, mask);
                pv = _mm256_sub_pd(pv, _mm256_div_pd(m, _mm256_sqrt_pd(r2g)));
            }
            let mut p = [0.0f64; LANES];
            _mm256_storeu_pd(p.as_mut_ptr(), pv);
            let o = batches * LANES;
            for jj in o..n {
                let l = jj - o;
                let dx = sx[jj] - pix;
                let dy = sy[jj] - piy;
                let dz = sz[jj] - piz;
                let r2 = dx * dx + dy * dy + dz * dz + eps2;
                let (m, r2g) = if same_set && jj == i { (0.0, 1.0) } else { (sm[jj], r2) };
                p[l] -= m / r2g.sqrt();
            }
            *out = reduce_lanes(p);
        }
    }
}

/// The [`LANES`]-wide potential sum over the SoA source columns — masked
/// and reduced exactly like [`acc_jerk_simd_chunk_body`].
#[inline(always)]
fn potential_simd_chunk_body(
    s0: usize,
    t_pos: &[[f64; 3]],
    src: &SoaBodies,
    eps2: f64,
    same_set: bool,
    phi: &mut [f64],
) {
    let (sx, sy, sz) = (src.pos.x.as_slice(), src.pos.y.as_slice(), src.pos.z.as_slice());
    let sm = src.mass.as_slice();
    let n = sm.len();
    let batches = n / LANES;
    for (k, out) in phi.iter_mut().enumerate() {
        let i = s0 + k;
        let [pix, piy, piz] = t_pos[i];
        let mut p = [0.0f64; LANES];
        for b in 0..batches {
            let o = b * LANES;
            let xs: &[f64; LANES] = sx[o..o + LANES].try_into().unwrap();
            let ys: &[f64; LANES] = sy[o..o + LANES].try_into().unwrap();
            let zs: &[f64; LANES] = sz[o..o + LANES].try_into().unwrap();
            let ms: &[f64; LANES] = sm[o..o + LANES].try_into().unwrap();
            for l in 0..LANES {
                let dx = xs[l] - pix;
                let dy = ys[l] - piy;
                let dz = zs[l] - piz;
                let r2 = dx * dx + dy * dy + dz * dz + eps2;
                let skip = same_set && o + l == i;
                let m = if skip { 0.0 } else { ms[l] };
                let r2g = if skip { 1.0 } else { r2 };
                p[l] -= m / r2g.sqrt();
            }
        }
        for jj in (batches * LANES)..n {
            let l = jj - batches * LANES;
            let dx = sx[jj] - pix;
            let dy = sy[jj] - piy;
            let dz = sz[jj] - piz;
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            let skip = same_set && jj == i;
            let m = if skip { 0.0 } else { sm[jj] };
            let r2g = if skip { 1.0 } else { r2 };
            p[l] -= m / r2g.sqrt();
        }
        *out = reduce_lanes(p);
    }
}

/// Total flop count for one force evaluation of `n_targets` × `n_sources`.
pub fn eval_flops(n_targets: usize, n_sources: usize) -> f64 {
    n_targets as f64 * n_sources as f64 * FLOPS_PER_PAIR
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_body() -> (Vec<f64>, Vec<[f64; 3]>, Vec<[f64; 3]>) {
        (
            vec![1.0, 1.0],
            vec![[-0.5, 0.0, 0.0], [0.5, 0.0, 0.0]],
            vec![[0.0, -0.5, 0.0], [0.0, 0.5, 0.0]],
        )
    }

    #[test]
    fn two_body_acceleration_points_inwards() {
        let (m, p, v) = two_body();
        let (a, _) = acc_jerk(Backend::Scalar, &p, &v, &m, &p, &v, 0.0, true);
        // |a| = m / r^2 = 1 / 1 = 1
        assert!((a[0][0] - 1.0).abs() < 1e-12);
        assert!((a[1][0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn backends_agree_bitwise() {
        let mut m = Vec::new();
        let mut p = Vec::new();
        let mut v = Vec::new();
        // deterministic pseudo-random cloud
        let mut x = 1u64;
        let mut rnd = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for _ in 0..64 {
            m.push(1.0 / 64.0);
            p.push([rnd(), rnd(), rnd()]);
            v.push([rnd(), rnd(), rnd()]);
        }
        let (a0, j0) = acc_jerk(Backend::Scalar, &p, &v, &m, &p, &v, 1e-4, true);
        let (a1, j1) = acc_jerk(Backend::CpuParallel, &p, &v, &m, &p, &v, 1e-4, true);
        let (a2, j2) = acc_jerk(Backend::GpuModel, &p, &v, &m, &p, &v, 1e-4, true);
        assert_eq!(a0, a1);
        assert_eq!(a0, a2);
        assert_eq!(j0, j1);
        assert_eq!(j0, j2);
    }

    fn lcg_cloud(n: usize, seed: u64) -> (Vec<f64>, Vec<[f64; 3]>, Vec<[f64; 3]>) {
        let mut x = seed.max(1);
        let mut rnd = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut m = Vec::new();
        let mut p = Vec::new();
        let mut v = Vec::new();
        for _ in 0..n {
            m.push(1.0 / n as f64);
            p.push([rnd(), rnd(), rnd()]);
            v.push([rnd(), rnd(), rnd()]);
        }
        (m, p, v)
    }

    fn assert_close(a: &[[f64; 3]], b: &[[f64; 3]], tol: f64, label: &str) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            for k in 0..3 {
                let scale = y[k].abs().max(1.0);
                assert!(
                    (x[k] - y[k]).abs() <= tol * scale,
                    "{label}[{i}][{k}]: {} vs {}",
                    x[k],
                    y[k]
                );
            }
        }
    }

    #[test]
    fn simd_soa_matches_scalar_within_tolerance() {
        // odd N exercises the remainder lanes
        let (m, p, v) = lcg_cloud(157, 5);
        let (a0, j0) = acc_jerk(Backend::Scalar, &p, &v, &m, &p, &v, 1e-4, true);
        let (a1, j1) = acc_jerk(Backend::SimdSoa, &p, &v, &m, &p, &v, 1e-4, true);
        assert_close(&a1, &a0, 1e-12, "acc");
        assert_close(&j1, &j0, 1e-12, "jerk");
    }

    #[test]
    fn simd_soa_is_bitwise_stable_run_to_run() {
        let (m, p, v) = lcg_cloud(130, 9);
        let (a0, j0) = acc_jerk(Backend::SimdSoa, &p, &v, &m, &p, &v, 1e-4, true);
        let (a1, j1) = acc_jerk(Backend::SimdSoa, &p, &v, &m, &p, &v, 1e-4, true);
        assert_eq!(a0, a1, "SimdSoa acc not run-to-run stable");
        assert_eq!(j0, j1, "SimdSoa jerk not run-to-run stable");
    }

    #[test]
    fn simd_soa_cross_set_and_remainder_tail() {
        // 5 sources: one full batch + 1 remainder lane; cross-set (no
        // self skip)
        let (m, p, v) = lcg_cloud(5, 3);
        let (tm, tp, tv) = lcg_cloud(3, 8);
        let _ = tm;
        let (a0, j0) = acc_jerk(Backend::Scalar, &tp, &tv, &m, &p, &v, 1e-3, false);
        let (a1, j1) = acc_jerk(Backend::SimdSoa, &tp, &tv, &m, &p, &v, 1e-3, false);
        assert_close(&a1, &a0, 1e-13, "acc");
        assert_close(&j1, &j0, 1e-13, "jerk");
    }

    #[test]
    fn simd_soa_potential_matches_scalar() {
        let (m, p, _) = lcg_cloud(101, 11);
        let mut phi_scalar = vec![0.0; 101];
        let mut phi_simd = vec![f64::NAN; 101];
        potential_into(Backend::Scalar, &p, &m, &p, 1e-4, true, &mut phi_scalar);
        potential_into(Backend::SimdSoa, &p, &m, &p, 1e-4, true, &mut phi_simd);
        for (i, (a, b)) in phi_simd.iter().zip(&phi_scalar).enumerate() {
            assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0), "phi[{i}]: {a} vs {b}");
        }
        // the allocating wrapper matches the parallel backend bitwise
        let phi = potential(&p, &m, &p, 1e-4, true);
        let mut phi_cpu = vec![0.0; 101];
        potential_into(Backend::CpuParallel, &p, &m, &p, 1e-4, true, &mut phi_cpu);
        assert_eq!(phi, phi_cpu);
    }

    #[test]
    fn simd_portable_body_matches_dispatched_path_bitwise() {
        // the golden vectors must hold on machines without AVX2: the
        // portable fallback body and whatever the runtime dispatch
        // picked (the intrinsics clone, here) execute the identical
        // IEEE operation sequence
        let (m, p, v) = lcg_cloud(77, 21);
        let (a0, j0) = acc_jerk(Backend::SimdSoa, &p, &v, &m, &p, &v, 1e-4, true);
        let mut soa = SoaBodies::new();
        soa.fill_from(&m, &p, &v);
        let mut a1 = vec![[0.0; 3]; 77];
        let mut j1 = vec![[0.0; 3]; 77];
        acc_jerk_simd_chunk_body(0, &p, &v, &soa, 1e-4, true, &mut a1, &mut j1);
        assert_eq!(a0, a1, "portable SimdSoa body diverges from dispatched acc");
        assert_eq!(j0, j1, "portable SimdSoa body diverges from dispatched jerk");
        let mut phi0 = vec![0.0; 77];
        potential_into(Backend::SimdSoa, &p, &m, &p, 1e-4, true, &mut phi0);
        let mut phi1 = vec![0.0; 77];
        soa.fill_from_positions(&m, &p);
        potential_simd_chunk_body(0, &p, &soa, 1e-4, true, &mut phi1);
        assert_eq!(phi0, phi1, "portable SimdSoa body diverges from dispatched phi");
    }

    #[test]
    fn simd_soa_handles_degenerate_inputs() {
        // coincident particles, zero mass, large coordinates
        let m = vec![1.0, 0.0, 1.0, 1.0, 2.0];
        let p = vec![
            [0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0], // coincident with particle 0, but massless
            [1e12, -1e12, 1e12],
            [1.0, 0.0, 0.0],
            [1.0, 0.0, 0.0], // coincident massive pair (softened)
        ];
        let v = vec![[0.0; 3]; 5];
        let (a0, j0) = acc_jerk(Backend::Scalar, &p, &v, &m, &p, &v, 1e-4, true);
        let (a1, j1) = acc_jerk(Backend::SimdSoa, &p, &v, &m, &p, &v, 1e-4, true);
        assert!(a1.iter().flatten().all(|x| x.is_finite()), "{a1:?}");
        assert_close(&a1, &a0, 1e-12, "acc");
        assert_close(&j1, &j0, 1e-12, "jerk");
    }

    #[test]
    fn potential_of_pair() {
        let (m, p, _) = two_body();
        let phi = potential(&p, &m, &p, 0.0, true);
        assert!((phi[0] + 1.0).abs() < 1e-12);
        // total potential energy = 0.5 * sum(m_i phi_i) = -1
        let e: f64 = 0.5 * phi.iter().zip(&m).map(|(f, mm)| f * mm).sum::<f64>();
        assert!((e + 1.0).abs() < 1e-12);
    }

    #[test]
    fn softening_caps_close_encounters() {
        let m = vec![1.0, 1.0];
        let p = vec![[0.0, 0.0, 0.0], [1e-9, 0.0, 0.0]];
        let v = vec![[0.0; 3]; 2];
        let (a, _) = acc_jerk(Backend::Scalar, &p, &v, &m, &p, &v, 1e-4, true);
        assert!(a[0][0].abs() < 1e7, "softened: {}", a[0][0]);
    }

    #[test]
    fn cross_set_interaction_has_no_self_skip() {
        let m = vec![2.0];
        let sp = vec![[0.0, 0.0, 1.0]];
        let sv = vec![[0.0; 3]];
        let tp = vec![[0.0, 0.0, 0.0]];
        let tv = vec![[0.0; 3]];
        let (a, _) = acc_jerk(Backend::Scalar, &tp, &tv, &m, &sp, &sv, 0.0, false);
        assert!((a[0][2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn flop_accounting() {
        assert_eq!(eval_flops(10, 20), 10.0 * 20.0 * FLOPS_PER_PAIR);
    }
}
