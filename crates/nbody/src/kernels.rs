//! Force/jerk computation backends (the "multi-kernel" in multi-kernel).

/// Floating-point operations per pairwise force+jerk interaction, used by
/// the jungle performance model (counted from the inner loop below:
/// ~60 flops including the rsqrt).
pub const FLOPS_PER_PAIR: f64 = 60.0;

/// Which implementation computes the forces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Single-core reference loop.
    Scalar,
    /// Rayon-parallel over targets (the CPU kernel).
    CpuParallel,
    /// Same arithmetic as `CpuParallel`; the jungle simulator charges its
    /// cost to a GPU device model instead of CPU cores.
    GpuModel,
}

/// Accelerations and jerks for all `targets` due to all `sources`
/// (which may be the same set; self-interaction is skipped by index when
/// `same_set` is true).
///
/// Returns `(acc, jerk)`. Allocating convenience wrapper over
/// [`acc_jerk_into`]; hot callers hold the output buffers across steps.
#[allow(clippy::too_many_arguments)]
pub fn acc_jerk(
    backend: Backend,
    t_pos: &[[f64; 3]],
    t_vel: &[[f64; 3]],
    s_mass: &[f64],
    s_pos: &[[f64; 3]],
    s_vel: &[[f64; 3]],
    eps2: f64,
    same_set: bool,
) -> (Vec<[f64; 3]>, Vec<[f64; 3]>) {
    let n = t_pos.len();
    let mut acc = vec![[0.0; 3]; n];
    let mut jerk = vec![[0.0; 3]; n];
    acc_jerk_into(backend, t_pos, t_vel, s_mass, s_pos, s_vel, eps2, same_set, &mut acc, &mut jerk);
    (acc, jerk)
}

/// Minimum targets per worker thread before the parallel backends fan
/// out to scoped threads.
const PAR_GRAIN: usize = 64;

/// [`acc_jerk`] writing into caller-provided slices (`acc.len() ==
/// jerk.len() == t_pos.len()`, validated once per call) — the
/// zero-allocation steady-state path for [`Backend::Scalar`]. The
/// parallel backends write each target's row in place from scoped worker
/// threads and allocate only thread-spawn bookkeeping.
///
/// Deterministic across backends: the accumulation over sources is
/// sequential within each target, so all three backends produce bitwise
/// identical results (property-tested).
#[allow(clippy::too_many_arguments)]
pub fn acc_jerk_into(
    backend: Backend,
    t_pos: &[[f64; 3]],
    t_vel: &[[f64; 3]],
    s_mass: &[f64],
    s_pos: &[[f64; 3]],
    s_vel: &[[f64; 3]],
    eps2: f64,
    same_set: bool,
    acc: &mut [[f64; 3]],
    jerk: &mut [[f64; 3]],
) {
    let n = t_pos.len();
    assert_eq!(acc.len(), n, "acc buffer length mismatch");
    assert_eq!(jerk.len(), n, "jerk buffer length mismatch");
    let one = |i: usize, a: &mut [f64; 3], j: &mut [f64; 3]| {
        let pi = t_pos[i];
        let vi = t_vel[i];
        *a = [0.0f64; 3];
        *j = [0.0f64; 3];
        for (jj, (&mj, (pj, vj))) in s_mass.iter().zip(s_pos.iter().zip(s_vel)).enumerate() {
            if same_set && jj == i {
                continue;
            }
            let dx = [pj[0] - pi[0], pj[1] - pi[1], pj[2] - pi[2]];
            let dv = [vj[0] - vi[0], vj[1] - vi[1], vj[2] - vi[2]];
            let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + eps2;
            let r = r2.sqrt();
            let inv_r3 = 1.0 / (r2 * r);
            let rv = dx[0] * dv[0] + dx[1] * dv[1] + dx[2] * dv[2];
            let alpha = 3.0 * rv / r2;
            for k in 0..3 {
                a[k] += mj * dx[k] * inv_r3;
                j[k] += mj * (dv[k] - alpha * dx[k]) * inv_r3;
            }
        }
    };

    match backend {
        Backend::Scalar => {
            for (i, (a, j)) in acc.iter_mut().zip(jerk.iter_mut()).enumerate() {
                one(i, a, j);
            }
        }
        Backend::CpuParallel | Backend::GpuModel => {
            let workers = std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1)
                .min(n.div_ceil(PAR_GRAIN))
                .max(1);
            if workers <= 1 {
                for (i, (a, j)) in acc.iter_mut().zip(jerk.iter_mut()).enumerate() {
                    one(i, a, j);
                }
                return;
            }
            let chunk = n.div_ceil(workers);
            std::thread::scope(|s| {
                let mut acc_rest = acc;
                let mut jerk_rest = jerk;
                let mut start = 0usize;
                while !acc_rest.is_empty() {
                    let take = chunk.min(acc_rest.len());
                    let (ac, ar) = acc_rest.split_at_mut(take);
                    acc_rest = ar;
                    let (jc, jr) = jerk_rest.split_at_mut(take);
                    jerk_rest = jr;
                    let s0 = start;
                    start += take;
                    s.spawn(move || {
                        for (k, (a, j)) in ac.iter_mut().zip(jc.iter_mut()).enumerate() {
                            one(s0 + k, a, j);
                        }
                    });
                }
            });
        }
    }
}

use rayon::prelude::*;

/// Gravitational potential of each target due to the sources (for energy
/// diagnostics). G = 1.
pub fn potential(
    t_pos: &[[f64; 3]],
    s_mass: &[f64],
    s_pos: &[[f64; 3]],
    eps2: f64,
    same_set: bool,
) -> Vec<f64> {
    t_pos
        .par_iter()
        .enumerate()
        .map(|(i, pi)| {
            let mut phi = 0.0;
            for (jj, (&mj, pj)) in s_mass.iter().zip(s_pos).enumerate() {
                if same_set && jj == i {
                    continue;
                }
                let dx = [pj[0] - pi[0], pj[1] - pi[1], pj[2] - pi[2]];
                let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + eps2;
                phi -= mj / r2.sqrt();
            }
            phi
        })
        .collect()
}

/// Total flop count for one force evaluation of `n_targets` × `n_sources`.
pub fn eval_flops(n_targets: usize, n_sources: usize) -> f64 {
    n_targets as f64 * n_sources as f64 * FLOPS_PER_PAIR
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_body() -> (Vec<f64>, Vec<[f64; 3]>, Vec<[f64; 3]>) {
        (
            vec![1.0, 1.0],
            vec![[-0.5, 0.0, 0.0], [0.5, 0.0, 0.0]],
            vec![[0.0, -0.5, 0.0], [0.0, 0.5, 0.0]],
        )
    }

    #[test]
    fn two_body_acceleration_points_inwards() {
        let (m, p, v) = two_body();
        let (a, _) = acc_jerk(Backend::Scalar, &p, &v, &m, &p, &v, 0.0, true);
        // |a| = m / r^2 = 1 / 1 = 1
        assert!((a[0][0] - 1.0).abs() < 1e-12);
        assert!((a[1][0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn backends_agree_bitwise() {
        let mut m = Vec::new();
        let mut p = Vec::new();
        let mut v = Vec::new();
        // deterministic pseudo-random cloud
        let mut x = 1u64;
        let mut rnd = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for _ in 0..64 {
            m.push(1.0 / 64.0);
            p.push([rnd(), rnd(), rnd()]);
            v.push([rnd(), rnd(), rnd()]);
        }
        let (a0, j0) = acc_jerk(Backend::Scalar, &p, &v, &m, &p, &v, 1e-4, true);
        let (a1, j1) = acc_jerk(Backend::CpuParallel, &p, &v, &m, &p, &v, 1e-4, true);
        let (a2, j2) = acc_jerk(Backend::GpuModel, &p, &v, &m, &p, &v, 1e-4, true);
        assert_eq!(a0, a1);
        assert_eq!(a0, a2);
        assert_eq!(j0, j1);
        assert_eq!(j0, j2);
    }

    #[test]
    fn potential_of_pair() {
        let (m, p, _) = two_body();
        let phi = potential(&p, &m, &p, 0.0, true);
        assert!((phi[0] + 1.0).abs() < 1e-12);
        // total potential energy = 0.5 * sum(m_i phi_i) = -1
        let e: f64 = 0.5 * phi.iter().zip(&m).map(|(f, mm)| f * mm).sum::<f64>();
        assert!((e + 1.0).abs() < 1e-12);
    }

    #[test]
    fn softening_caps_close_encounters() {
        let m = vec![1.0, 1.0];
        let p = vec![[0.0, 0.0, 0.0], [1e-9, 0.0, 0.0]];
        let v = vec![[0.0; 3]; 2];
        let (a, _) = acc_jerk(Backend::Scalar, &p, &v, &m, &p, &v, 1e-4, true);
        assert!(a[0][0].abs() < 1e7, "softened: {}", a[0][0]);
    }

    #[test]
    fn cross_set_interaction_has_no_self_skip() {
        let m = vec![2.0];
        let sp = vec![[0.0, 0.0, 1.0]];
        let sv = vec![[0.0; 3]];
        let tp = vec![[0.0, 0.0, 0.0]];
        let tv = vec![[0.0; 3]];
        let (a, _) = acc_jerk(Backend::Scalar, &tp, &tv, &m, &sp, &sv, 0.0, false);
        assert!((a[0][2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn flop_accounting() {
        assert_eq!(eval_flops(10, 20), 10.0 * 20.0 * FLOPS_PER_PAIR);
    }
}
