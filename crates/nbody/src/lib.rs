//! # jc-nbody — PhiGRAPE: direct-summation Hermite N-body dynamics
//!
//! Reproduction of the gravitational-dynamics kernel used in the paper's
//! embedded-cluster simulation: PhiGRAPE (Harfst et al. \[7\]), *"written in
//! Fortran, available in both a CPU and a GPU (using CUDA) variant"*.
//!
//! The integrator is the classic 4th-order Hermite predictor–corrector with
//! a shared adaptive timestep (Aarseth criterion) and Plummer softening,
//! operating in dimensionless N-body units (G = 1). Four force backends
//! exercise the paper's multi-kernel point:
//!
//! * [`kernels::Backend::Scalar`] — one core, reference implementation.
//! * [`kernels::Backend::CpuParallel`] — thread-parallel over targets
//!   (the "CPU variant").
//! * [`kernels::Backend::GpuModel`] — the same data-parallel force loop,
//!   *plus* a device cost model (GFLOP/s + transfer) used by the jungle
//!   simulator to account virtual time. Results are bit-identical to the
//!   CPU backends because per-target accumulation is sequential in `j` —
//!   the backends differ in *where* and *how fast* they run, never in the
//!   physics, exactly the paper's definition of a multi-kernel model.
//! * [`kernels::Backend::SimdSoa`] — the structure-of-arrays compute
//!   path: sources mirrored into aligned `x/y/z/m` columns
//!   ([`jc_compute::soa`]) and accumulated 4 lanes wide with a fixed
//!   reduction order. Bitwise run-to-run stable (any worker count) but
//!   equal to the scalar backends only to rounding; it carries its own
//!   golden vectors and tolerance-bounded property tests.
//!
//! [`plummer`] generates the paper's initial conditions (Plummer spheres
//! with a Salpeter IMF); [`diagnostics`] provides the energy/virial checks
//! the tests and EXPERIMENTS.md lean on.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(unreachable_pub)]

pub mod diagnostics;
pub mod hermite;
pub mod kernels;
pub mod particle;
pub mod plummer;

pub use hermite::PhiGrape;
pub use kernels::Backend;
pub use particle::ParticleSet;
