//! Golden-vector determinism tests: the refactored `acc_jerk` /
//! `acc_jerk_into` must reproduce the pre-refactor kernel bitwise, on
//! every backend. The vectors below were captured from the original
//! allocating implementation (24-particle LCG cloud, seed 42, eps² =
//! 1e-4) before the scratch-buffer refactor.

use jc_nbody::kernels::{acc_jerk, acc_jerk_into, potential_into, Backend};

const N: usize = 24;

#[rustfmt::skip]
const GOLDEN_ACC: [u64; N * 3] = [
    0xbfc2c86db0e20a62, 0x3ff4a269f8aff972, 0x3ff224b774e1fa12,
    0x400675105d1ba416, 0xc00da5e6117656ce, 0xbff9c67f06b92dbf,
    0xc0149fed2ba502d4, 0x3ff4a924d630a62b, 0xc0149b50cd2c156b,
    0x3fc46aab497627ff, 0xbfda3f3c74b10220, 0x3ff59ddd9150cf74,
    0x3fe69a1fba0cd02c, 0x3fbce970e0ecc4e4, 0xbfcabcf11bbafac7,
    0xbffc0438b460c436, 0xbfc292659e70e304, 0x3fcd3adaa861f929,
    0x3feb2f3bc7a9d408, 0x3fe10d5ecd6fa34b, 0xbff4751db88827bc,
    0x3fd060ad8af069c7, 0xbffe61677836e08b, 0xbfe1daee6331e317,
    0xbff0d485ef22c19a, 0x3ff065a80d83f862, 0xbfc031a04b2d38d7,
    0x3ff36838db3b4fa7, 0xbfcef76c270c5a34, 0x3ff0506f470906e5,
    0x3fea9486c2a108f3, 0x3ff6ae4a2f71a696, 0xbfe26449d26d6696,
    0xbffd4b805dd244c6, 0xbff6a588d18336e1, 0x3ff91c1340a39983,
    0x3ffda80d60ae98f2, 0xbfe565a085aa997f, 0x3fc48ec941929ee6,
    0xbfb0174ab01e5e02, 0xbffb3e1fbc920d10, 0xbfeb873b4631d86c,
    0x3fbbbd2cc166cfa6, 0xbfea3b7fc7e3b806, 0x3fe1cb157dfb4b81,
    0xbfe3f3eeae98abdc, 0x3fcd589971b6f954, 0x3ffc86fbf2e05db8,
    0x3ffa2d810522f417, 0x40005db43e0000e4, 0x3fe406230a59548a,
    0xc00190e4ed51a9e4, 0x3ff6249551ba910f, 0x4007482390084e76,
    0xbfeb7a16927ddf7f, 0x3ff14cea4bba2108, 0xbff3e9480f8254ff,
    0xbfcc4270f73bbc45, 0xbfed4285f26963e5, 0xbff64adfb3410aa0,
    0x3ff0acbb1530a071, 0xc0005a5d239a59da, 0xbff0c9dbadee1850,
    0x3fe49e40b10c6d68, 0xbff58eb64e53426c, 0x3ff4ac1c7cb8e2ab,
    0x3fecc836012bd8ba, 0xbfeb5203fe90ab3a, 0xbff079ea680e0a0d,
    0x3fec8edb0ec00572, 0x401708da1ae61c4a, 0x4003a6c8ec424d33,
];

#[rustfmt::skip]
const GOLDEN_JERK: [u64; N * 3] = [
    0x3ff0d5f8045f3e87, 0xbff44b7e29ba4f67, 0x40018bb5fcd7a003,
    0x3fe8acdfbaffb128, 0xc02cbc7c9c924747, 0x4034912a659f1e0a,
    0xc0506cc180628ad7, 0xc041aa6754b814c1, 0xc02ea2060db29747,
    0x3fd234f533cd3e85, 0x3fe10830806d25fc, 0xbfdb9dfe9c525deb,
    0xbfbe5fc65d627bda, 0xbff5965cfefbd4d6, 0xbfbd7c7c7902ddeb,
    0xc005c83b0c8d1ecc, 0xc0036281f231f26f, 0x400abd6663f29301,
    0xbfe9fcce2f173732, 0x3fe50f0123cd3405, 0xbfb3333dd87b17fb,
    0x4024c18162f09cc6, 0x401b3df556ade9b8, 0xc01ec19d2cf13f7c,
    0x40114acfbf54f66c, 0x3fe697e0394ea3b8, 0x400f6a26f8a4126e,
    0xc002694d71cf9cb0, 0x3fd3bada3b176458, 0x3ff89f15864412ba,
    0xbfe5d3308938ccff, 0x3fdb95f5c64cea9b, 0x400834ba3e582565,
    0xc020cdfcf2dab15b, 0xc00166cd1a0a29eb, 0x40211b0c03dd01bb,
    0xc0029949e5c6f44b, 0x400092bd986dd7bb, 0xbfd775ab9ad6358a,
    0xbff2c969c5c961f1, 0x3fec393fc2f79425, 0xbfd3b7e055d0c3a6,
    0xbfc18a53429ce216, 0xc006543e26efdb45, 0xc0125a7fb020e3d3,
    0xbff8148852d1a1b9, 0xbfe85baf882824d5, 0xc007eab49f54750c,
    0x404f942a7534f7a8, 0x403fb5ee45b27c6b, 0x403757d936a0341e,
    0x400247440faeebfa, 0xc0108e0fc6487114, 0xc01ddfdd7e430fbb,
    0xbfba225230b44d9c, 0x3fc94e8db37316af, 0xc00118fcc3358559,
    0xbfb9e0b46aa601c1, 0x3fc42f854e35cfb2, 0x3ffd9ed200afd37e,
    0x401c46f491c35655, 0x4020ef9ba181df6d, 0x3fb989b36dd76688,
    0x400438fadd808f8b, 0xbfd43b91433b9f21, 0xbfd07867b5b8b7ac,
    0xbfe1045f8dc33986, 0x3fd1d06acebd9f05, 0x3fe70b6db5ef1c3e,
    0xc014ef42481cb00f, 0x40276bae8c2bf55e, 0xc03b6b159d57112d,
];

fn cloud(n: usize, seed: u64) -> (Vec<f64>, Vec<[f64; 3]>, Vec<[f64; 3]>) {
    let mut x = seed.max(1);
    let mut rnd = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let mut m = Vec::new();
    let mut p = Vec::new();
    let mut v = Vec::new();
    for _ in 0..n {
        m.push(1.0 / n as f64);
        p.push([rnd(), rnd(), rnd()]);
        v.push([rnd(), rnd(), rnd()]);
    }
    (m, p, v)
}

fn assert_bits(label: &str, got: &[[f64; 3]], want: &[u64]) {
    for (i, a) in got.iter().enumerate() {
        for k in 0..3 {
            assert_eq!(
                a[k].to_bits(),
                want[i * 3 + k],
                "{label}[{i}][{k}] = {} diverges from the pre-refactor kernel",
                a[k]
            );
        }
    }
}

#[test]
fn acc_jerk_matches_pre_refactor_golden_on_all_backends() {
    let (m, p, v) = cloud(N, 42);
    for backend in [Backend::Scalar, Backend::CpuParallel, Backend::GpuModel] {
        let (a, j) = acc_jerk(backend, &p, &v, &m, &p, &v, 1e-4, true);
        assert_bits("acc", &a, &GOLDEN_ACC);
        assert_bits("jerk", &j, &GOLDEN_JERK);
    }
}

#[test]
fn acc_jerk_into_matches_pre_refactor_golden() {
    let (m, p, v) = cloud(N, 42);
    let mut a = vec![[0.0; 3]; N];
    let mut j = vec![[0.0; 3]; N];
    for backend in [Backend::Scalar, Backend::CpuParallel, Backend::GpuModel] {
        // dirty the buffers: the kernel must fully overwrite them
        a.iter_mut().for_each(|x| *x = [f64::NAN; 3]);
        j.iter_mut().for_each(|x| *x = [f64::NAN; 3]);
        acc_jerk_into(backend, &p, &v, &m, &p, &v, 1e-4, true, &mut a, &mut j);
        assert_bits("acc", &a, &GOLDEN_ACC);
        assert_bits("jerk", &j, &GOLDEN_JERK);
    }
}

// --- Backend::SimdSoa golden vectors -------------------------------------
//
// The SoA compute path sums sources lane-by-lane (fixed 4-wide batches,
// pairwise lane reduction), so its results differ from the scalar
// backends by rounding — it gets its *own* golden vectors, captured from
// the same 24-particle cloud. The AVX2 intrinsics clone and the portable
// fallback body execute the identical IEEE operation sequence, so these
// bits hold on any machine (pinned by a unit test comparing the two
// bodies directly in `jc_nbody::kernels`).

#[rustfmt::skip]
const GOLDEN_SIMD_ACC: [u64; N * 3] = [
    0xbfc2c86db0e20a5f, 0x3ff4a269f8aff971, 0x3ff224b774e1fa10,
    0x400675105d1ba418, 0xc00da5e6117656ce, 0xbff9c67f06b92dbf,
    0xc0149fed2ba502d6, 0x3ff4a924d630a62b, 0xc0149b50cd2c156b,
    0x3fc46aab497627fa, 0xbfda3f3c74b1021d, 0x3ff59ddd9150cf74,
    0x3fe69a1fba0cd02c, 0x3fbce970e0ecc4ea, 0xbfcabcf11bbafac6,
    0xbffc0438b460c437, 0xbfc292659e70e2f8, 0x3fcd3adaa861f922,
    0x3feb2f3bc7a9d409, 0x3fe10d5ecd6fa34b, 0xbff4751db88827bd,
    0x3fd060ad8af069ca, 0xbffe61677836e08b, 0xbfe1daee6331e318,
    0xbff0d485ef22c19b, 0x3ff065a80d83f863, 0xbfc031a04b2d38da,
    0x3ff36838db3b4fa6, 0xbfcef76c270c5a3d, 0x3ff0506f470906e4,
    0x3fea9486c2a108ef, 0x3ff6ae4a2f71a694, 0xbfe26449d26d6696,
    0xbffd4b805dd244c6, 0xbff6a588d18336e2, 0x3ff91c1340a39983,
    0x3ffda80d60ae98f2, 0xbfe565a085aa9980, 0x3fc48ec941929ee6,
    0xbfb0174ab01e5e14, 0xbffb3e1fbc920d10, 0xbfeb873b4631d870,
    0x3fbbbd2cc166cfa2, 0xbfea3b7fc7e3b806, 0x3fe1cb157dfb4b83,
    0xbfe3f3eeae98abdc, 0x3fcd589971b6f94f, 0x3ffc86fbf2e05db6,
    0x3ffa2d810522f418, 0x40005db43e0000e4, 0x3fe406230a59548c,
    0xc00190e4ed51a9e6, 0x3ff6249551ba910f, 0x4007482390084e76,
    0xbfeb7a16927ddf7d, 0x3ff14cea4bba2109, 0xbff3e9480f8254ff,
    0xbfcc4270f73bbc49, 0xbfed4285f26963e4, 0xbff64adfb3410aa0,
    0x3ff0acbb1530a072, 0xc0005a5d239a59da, 0xbff0c9dbadee1852,
    0x3fe49e40b10c6d6a, 0xbff58eb64e53426c, 0x3ff4ac1c7cb8e2ac,
    0x3fecc836012bd8ba, 0xbfeb5203fe90ab3a, 0xbff079ea680e0a0d,
    0x3fec8edb0ec00574, 0x401708da1ae61c4b, 0x4003a6c8ec424d33,
];

#[rustfmt::skip]
const GOLDEN_SIMD_JERK: [u64; N * 3] = [
    0x3ff0d5f8045f3e89, 0xbff44b7e29ba4f69, 0x40018bb5fcd7a005,
    0x3fe8acdfbaffb0d8, 0xc02cbc7c9c924747, 0x4034912a659f1e0b,
    0xc0506cc180628ad9, 0xc041aa6754b814c0, 0xc02ea2060db2974a,
    0x3fd234f533cd3e8c, 0x3fe10830806d25f6, 0xbfdb9dfe9c525de9,
    0xbfbe5fc65d627bd0, 0xbff5965cfefbd4d3, 0xbfbd7c7c7902ddf8,
    0xc005c83b0c8d1ec7, 0xc0036281f231f271, 0x400abd6663f292fd,
    0xbfe9fcce2f173732, 0x3fe50f0123cd3406, 0xbfb3333dd87b1800,
    0x4024c18162f09cc7, 0x401b3df556ade9ba, 0xc01ec19d2cf13f7e,
    0x40114acfbf54f672, 0x3fe697e0394ea3b9, 0x400f6a26f8a41272,
    0xc002694d71cf9cb0, 0x3fd3bada3b176457, 0x3ff89f15864412ba,
    0xbfe5d3308938cd02, 0x3fdb95f5c64cea99, 0x400834ba3e582566,
    0xc020cdfcf2dab15d, 0xc00166cd1a0a29eb, 0x40211b0c03dd01bd,
    0xc0029949e5c6f44e, 0x400092bd986dd7bc, 0xbfd775ab9ad63588,
    0xbff2c969c5c961f2, 0x3fec393fc2f79427, 0xbfd3b7e055d0c3b5,
    0xbfc18a53429ce250, 0xc006543e26efdb46, 0xc0125a7fb020e3d2,
    0xbff8148852d1a1b7, 0xbfe85baf882824d3, 0xc007eab49f54750c,
    0x404f942a7534f7ac, 0x403fb5ee45b27c69, 0x403757d936a03423,
    0x400247440faeebf9, 0xc0108e0fc6487117, 0xc01ddfdd7e430fbe,
    0xbfba225230b44da0, 0x3fc94e8db37316b7, 0xc00118fcc3358559,
    0xbfb9e0b46aa601ac, 0x3fc42f854e35cfa4, 0x3ffd9ed200afd37c,
    0x401c46f491c35654, 0x4020ef9ba181df70, 0x3fb989b36dd76640,
    0x400438fadd808f8e, 0xbfd43b91433b9f1c, 0xbfd07867b5b8b7a8,
    0xbfe1045f8dc33989, 0x3fd1d06acebd9f05, 0x3fe70b6db5ef1c3e,
    0xc014ef42481cb00d, 0x40276bae8c2bf55c, 0xc03b6b159d57112c,
];

#[rustfmt::skip]
const GOLDEN_SIMD_PHI: [u64; N] = [
    0xbffbda23ae9cfc6e, 0xbffdb0cfa10ecd70, 0xc0002303b708ed1f,
    0xbffd605cc8fc2b1f, 0xbfff433848d742f0, 0xbffcd8a9dae3da41,
    0xbff7e52c65eeeb35, 0xbffa9852e1ba19bb, 0xbffc2d4216052a40,
    0xbff82e9ef730ea22, 0xbff7f751642295ec, 0xbff7d96a67853989,
    0xbff6a0db7879e1cf, 0xbff9c3f3b3c8b8ab, 0xc00081ed43621ace,
    0xbff6fbfd2481f8c6, 0xc00252cc12e9c9ee, 0xc000be71dceeb91f,
    0xbff7f51347ab4035, 0xbff744528d373678, 0xc001de986ffe1ee2,
    0xbff9b652e7dd9926, 0xbff83b127c7073cf, 0xbffc9318710413ee,
];

#[test]
fn simd_soa_matches_its_own_golden_vectors() {
    let (m, p, v) = cloud(N, 42);
    let (a, j) = acc_jerk(Backend::SimdSoa, &p, &v, &m, &p, &v, 1e-4, true);
    assert_bits("simd acc", &a, &GOLDEN_SIMD_ACC);
    assert_bits("simd jerk", &j, &GOLDEN_SIMD_JERK);
}

#[test]
fn simd_soa_potential_matches_its_own_golden_vector() {
    let (m, p, _) = cloud(N, 42);
    let mut phi = vec![0.0; N];
    potential_into(Backend::SimdSoa, &p, &m, &p, 1e-4, true, &mut phi);
    for (i, (got, want)) in phi.iter().zip(&GOLDEN_SIMD_PHI).enumerate() {
        assert_eq!(
            got.to_bits(),
            *want,
            "phi[{i}] = {got} diverges from the SimdSoa golden vector"
        );
    }
}
