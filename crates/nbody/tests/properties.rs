//! Property tests: N-body integrator invariants.

use jc_nbody::diagnostics::{angular_momentum, total_energy};
use jc_nbody::kernels::{acc_jerk, potential_into};
use jc_nbody::plummer::{plummer_sphere, salpeter_imf};
use jc_nbody::{Backend, PhiGrape};
use proptest::prelude::*;

/// A random particle cloud whose pathologies are chosen by the
/// strategy: position scale sweeps ±10^±6 (±large coordinates), some
/// particles are exact duplicates of earlier ones (coincident pairs)
/// and some masses are exactly zero.
#[allow(clippy::type_complexity)]
fn degenerate_cloud(n: usize) -> impl Strategy<Value = (Vec<f64>, Vec<[f64; 3]>, Vec<[f64; 3]>)> {
    (
        proptest::collection::vec((0.0f64..1.0, (-1.0f64..1.0), (-1.0f64..1.0), (-1.0f64..1.0)), n),
        -6i32..=6,
        proptest::collection::vec((0usize..n.max(1), 0usize..n.max(1)), 0..4),
    )
        .prop_map(move |(raw, scale_exp, dups)| {
            let scale = 10.0f64.powi(scale_exp);
            let mut m = Vec::with_capacity(n);
            let mut p = Vec::with_capacity(n);
            let mut v = Vec::with_capacity(n);
            for (i, &(mm, x, y, z)) in raw.iter().enumerate() {
                // every 5th particle is massless
                m.push(if i % 5 == 4 { 0.0 } else { mm });
                p.push([x * scale, y * scale, z * scale]);
                v.push([y, z, x]);
            }
            for &(a, b) in &dups {
                p[a] = p[b]; // exact coincidence
            }
            (m, p, v)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Backend::SimdSoa` matches the scalar backend within a stated
    /// relative tolerance (1e-10 of the largest magnitude in the set)
    /// on random particle sets including degenerate inputs: coincident
    /// particles, zero masses, ±large coordinates.
    #[test]
    fn simd_soa_matches_scalar_within_tolerance((m, p, v) in degenerate_cloud(60)) {
        let eps2 = 1e-4;
        let (a0, j0) = acc_jerk(Backend::Scalar, &p, &v, &m, &p, &v, eps2, true);
        let (a1, j1) = acc_jerk(Backend::SimdSoa, &p, &v, &m, &p, &v, eps2, true);
        let scale = |rows: &[[f64; 3]]| {
            rows.iter().flatten().fold(0.0f64, |s, x| s.max(x.abs())).max(1e-300)
        };
        let (sa, sj) = (scale(&a0), scale(&j0));
        for i in 0..p.len() {
            for k in 0..3 {
                prop_assert!(a1[i][k].is_finite(), "acc[{}][{}] not finite", i, k);
                prop_assert!(
                    (a1[i][k] - a0[i][k]).abs() <= 1e-10 * sa,
                    "acc[{}][{}]: {} vs {} (scale {})", i, k, a1[i][k], a0[i][k], sa
                );
                prop_assert!(
                    (j1[i][k] - j0[i][k]).abs() <= 1e-10 * sj,
                    "jerk[{}][{}]: {} vs {} (scale {})", i, k, j1[i][k], j0[i][k], sj
                );
            }
        }
        let mut phi0 = vec![0.0; p.len()];
        let mut phi1 = vec![0.0; p.len()];
        potential_into(Backend::Scalar, &p, &m, &p, eps2, true, &mut phi0);
        potential_into(Backend::SimdSoa, &p, &m, &p, eps2, true, &mut phi1);
        let sp = phi0.iter().fold(0.0f64, |s, x| s.max(x.abs())).max(1e-300);
        for i in 0..p.len() {
            prop_assert!(
                (phi1[i] - phi0[i]).abs() <= 1e-10 * sp,
                "phi[{}]: {} vs {}", i, phi1[i], phi0[i]
            );
        }
    }

    /// The SimdSoa backend is bitwise stable from run to run on
    /// arbitrary inputs (the deterministic-reduction contract).
    #[test]
    fn simd_soa_is_run_to_run_stable((m, p, v) in degenerate_cloud(40)) {
        let (a0, j0) = acc_jerk(Backend::SimdSoa, &p, &v, &m, &p, &v, 1e-4, true);
        let (a1, j1) = acc_jerk(Backend::SimdSoa, &p, &v, &m, &p, &v, 1e-4, true);
        prop_assert_eq!(a0, a1);
        prop_assert_eq!(j0, j1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Short integrations of any Plummer sphere conserve energy and
    /// angular momentum to integrator accuracy.
    #[test]
    fn conservation_laws(seed in 0u64..1000, n in 16usize..64) {
        let ics = plummer_sphere(n, seed);
        let mut g = PhiGrape::new(ics, Backend::Scalar).with_softening(0.02).with_eta(0.01);
        let e0 = total_energy(&g.particles, g.eps2);
        let l0 = angular_momentum(&g.particles);
        g.evolve_model(0.2);
        let e1 = total_energy(&g.particles, g.eps2);
        let l1 = angular_momentum(&g.particles);
        prop_assert!(((e1 - e0) / e0).abs() < 5e-3, "dE/E = {}", (e1 - e0) / e0);
        for k in 0..3 {
            prop_assert!((l1[k] - l0[k]).abs() < 1e-4, "dL = {:?}", l1);
        }
    }

    /// Kicks are exactly additive in velocity.
    #[test]
    fn kick_linearity(seed in 0u64..100, dvx in -1.0f64..1.0) {
        let ics = plummer_sphere(8, seed);
        let mut g = PhiGrape::new(ics, Backend::Scalar);
        let v0: Vec<[f64; 3]> = g.particles.vel.clone();
        let dv = vec![[dvx, 0.0, 0.0]; 8];
        g.kick(&dv);
        for (v, old) in g.particles.vel.iter().zip(&v0) {
            prop_assert!((v[0] - (old[0] + dvx)).abs() < 1e-15);
        }
    }

    /// Salpeter samples always respect their bounds and are reproducible.
    #[test]
    fn imf_bounds(seed in 0u64..5000, n in 1usize..200) {
        let m = salpeter_imf(n, 0.3, 60.0, seed);
        prop_assert_eq!(m.len(), n);
        prop_assert!(m.iter().all(|&x| (0.3..=60.0).contains(&x)));
        prop_assert_eq!(m, salpeter_imf(n, 0.3, 60.0, seed));
    }
}
