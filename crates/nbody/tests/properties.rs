//! Property tests: N-body integrator invariants.

use jc_nbody::diagnostics::{angular_momentum, total_energy};
use jc_nbody::plummer::{plummer_sphere, salpeter_imf};
use jc_nbody::{Backend, PhiGrape};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Short integrations of any Plummer sphere conserve energy and
    /// angular momentum to integrator accuracy.
    #[test]
    fn conservation_laws(seed in 0u64..1000, n in 16usize..64) {
        let ics = plummer_sphere(n, seed);
        let mut g = PhiGrape::new(ics, Backend::Scalar).with_softening(0.02).with_eta(0.01);
        let e0 = total_energy(&g.particles, g.eps2);
        let l0 = angular_momentum(&g.particles);
        g.evolve_model(0.2);
        let e1 = total_energy(&g.particles, g.eps2);
        let l1 = angular_momentum(&g.particles);
        prop_assert!(((e1 - e0) / e0).abs() < 5e-3, "dE/E = {}", (e1 - e0) / e0);
        for k in 0..3 {
            prop_assert!((l1[k] - l0[k]).abs() < 1e-4, "dL = {:?}", l1);
        }
    }

    /// Kicks are exactly additive in velocity.
    #[test]
    fn kick_linearity(seed in 0u64..100, dvx in -1.0f64..1.0) {
        let ics = plummer_sphere(8, seed);
        let mut g = PhiGrape::new(ics, Backend::Scalar);
        let v0: Vec<[f64; 3]> = g.particles.vel.clone();
        let dv = vec![[dvx, 0.0, 0.0]; 8];
        g.kick(&dv);
        for (v, old) in g.particles.vel.iter().zip(&v0) {
            prop_assert!((v[0] - (old[0] + dvx)).abs() < 1e-15);
        }
    }

    /// Salpeter samples always respect their bounds and are reproducible.
    #[test]
    fn imf_bounds(seed in 0u64..5000, n in 1usize..200) {
        let m = salpeter_imf(n, 0.3, 60.0, seed);
        prop_assert_eq!(m.len(), n);
        prop_assert!(m.iter().all(|&x| (0.3..=60.0).contains(&x)));
        prop_assert_eq!(m, salpeter_imf(n, 0.3, 60.0, seed));
    }
}
