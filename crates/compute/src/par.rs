//! The unified parallel chunking core.
//!
//! Every kernel hot path in this workspace parallelizes the same way:
//! split the target range into contiguous chunks, hand each chunk (plus
//! a reusable per-worker scratch) to a worker, and fold the per-worker
//! results. [`chunked`] is that loop, written once; the kernel crates
//! used to carry three hand-rolled copies of it. Parallel chunks run on
//! the persistent worker pool (`crate::pool`): threads are spawned once
//! per process, park in a channel `recv()` between calls, and receive
//! chunks over bounded (allocation-free once warm) channel handoffs —
//! per-call `std::thread::scope` spawning survives only as the
//! [`chunked_scoped`] reference implementation the equivalence tests
//! compare against.
//!
//! Contracts the kernels rely on:
//!
//! * **Determinism** — chunking never reorders arithmetic *within* a
//!   target, and results are written into disjoint pre-split slices, so
//!   outputs are bitwise identical for any worker count (the kernel
//!   crates property-test this). Pooled and scoped execution use the
//!   same chunk geometry, state assignment and ascending merge order,
//!   so they are bitwise interchangeable (property-tested in the bench
//!   crate).
//! * **Zero allocation in sequential mode** — with `threads <= 1` the
//!   body runs inline on the calling thread: no spawn, no handle
//!   collection, no heap traffic. The parallel mode also reaches an
//!   allocation-free steady state once the pool threads exist and the
//!   channel buffers are warm (the `zero_alloc` suite pins both).

use std::sync::OnceLock;

/// Default minimum targets per worker thread before a kernel fans out.
/// (Each kernel may override; they all currently agree on 64.)
pub const DEFAULT_GRAIN: usize = 64;

/// Physical core count, detected once per process (detection allocates;
/// the result cannot change, unlike the environment).
fn cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1))
}

/// Auto-detected worker cap: the `JC_THREADS` environment override when
/// set to a positive integer, otherwise `available_parallelism`.
///
/// The environment is read *per resolution* — deliberately not cached,
/// so an in-process `JC_THREADS` change (perfsuite's thread-sweep rows,
/// test harnesses) takes effect on the next kernel call. The read is
/// off the hot path: [`threads_for`] resolves it only when the grain
/// policy actually allows fanning out, and a set `JC_THREADS` means the
/// caller has already opted out of the strict sequential mode. (Core
/// detection stays cached — it allocates and cannot change.)
fn auto_threads() -> usize {
    std::env::var("JC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(cores)
}

/// Worker count for a problem of `n` targets: `max_threads` (0 = auto —
/// one per core, or the `JC_THREADS` override for reproducible runs on
/// shared machines), clamped so every worker gets at least `grain`
/// targets. An explicit `max_threads` always wins over the environment:
/// `max_threads == 1` is the strictly sequential mode whose steady
/// state must stay allocation-free, so it must never touch the
/// (allocating) environment read or core detection — nor does any call
/// the grain policy already pins to one worker.
pub fn threads_for(n: usize, max_threads: usize, grain: usize) -> usize {
    let by_grain = n.div_ceil(grain.max(1)).max(1);
    if max_threads == 1 || by_grain == 1 {
        return 1;
    }
    let cap = if max_threads == 0 { auto_threads() } else { max_threads };
    cap.min(by_grain).max(1)
}

/// Data that [`chunked`] can split into contiguous per-worker chunks:
/// slices, and tuples of equal-length slices (split at the same index).
pub trait Split: Sized {
    /// Number of targets carried.
    fn chunk_len(&self) -> usize;
    /// Split into `[0, mid)` and `[mid, len)`.
    fn split_at(self, mid: usize) -> (Self, Self);
}

impl<T> Split for &[T] {
    fn chunk_len(&self) -> usize {
        self.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        (*self).split_at(mid)
    }
}

impl<T> Split for &mut [T] {
    fn chunk_len(&self) -> usize {
        self.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        self.split_at_mut(mid)
    }
}

impl<A: Split, B: Split> Split for (A, B) {
    fn chunk_len(&self) -> usize {
        debug_assert_eq!(self.0.chunk_len(), self.1.chunk_len(), "tuple slices must match");
        self.0.chunk_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a0, a1) = self.0.split_at(mid);
        let (b0, b1) = self.1.split_at(mid);
        ((a0, b0), (a1, b1))
    }
}

impl<A: Split, B: Split, C: Split> Split for (A, B, C) {
    fn chunk_len(&self) -> usize {
        debug_assert_eq!(self.0.chunk_len(), self.1.chunk_len(), "tuple slices must match");
        debug_assert_eq!(self.0.chunk_len(), self.2.chunk_len(), "tuple slices must match");
        self.0.chunk_len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a0, a1) = self.0.split_at(mid);
        let (b0, b1) = self.1.split_at(mid);
        let (c0, c1) = self.2.split_at(mid);
        ((a0, b0, c0), (a1, b1, c1))
    }
}

/// Run `body(start_index, chunk, state)` over contiguous chunks of
/// `data` on pool workers — at most `threads` workers, at most one
/// per entry of `states` — and fold the per-chunk results with `merge`
/// (worker results are merged in ascending chunk order, so reductions
/// are deterministic for a fixed worker count; kernels whose *results*
/// must not depend on the worker count use order-independent merges:
/// sums, maxima).
///
/// With `threads <= 1` (or no targets) the body runs inline on the
/// calling thread and performs zero heap allocations — the sequential
/// mode the `zero_alloc` suite pins. `states[k]` is handed to chunk `k`
/// (ascending), so per-worker staging buffers land in chunk order.
///
/// Parallel chunks are handed to the persistent worker pool: all but
/// the last chunk go to parked pool threads over warm bounded channels
/// and the last runs inline on the calling thread, so a warm parallel
/// call spawns no threads and allocates nothing either. Results are
/// bitwise identical to [`chunked_scoped`] for any `threads` (same
/// geometry, same states, same merge order). Two deliberate fallbacks
/// keep the pool out of pathological shapes: a call from *inside* a
/// pool worker runs inline (nested fan-out would deadlock a positional
/// pool), and a call fanning out past the pool's fixed per-call task
/// budget uses scoped spawning.
///
/// Panics if `states` is empty; a panicking worker propagates.
pub fn chunked<D, W, R, F, M>(
    threads: usize,
    data: D,
    states: &mut [W],
    init: R,
    body: F,
    merge: M,
) -> R
where
    D: Split + Send,
    W: Send,
    R: Send,
    F: Fn(usize, D, &mut W) -> R + Sync,
    M: Fn(R, R) -> R,
{
    assert!(!states.is_empty(), "chunked needs at least one worker state");
    let n = data.chunk_len();
    let threads = threads.min(states.len()).max(1);
    if threads <= 1 || n == 0 || crate::pool::on_worker_thread() {
        let r = body(0, data, &mut states[0]);
        return merge(init, r);
    }
    if threads > crate::pool::MAX_CHUNKS {
        return chunked_scoped(threads, data, states, init, body, merge);
    }
    crate::pool::run_chunked(threads, data, states, init, &body, merge)
}

/// The scoped-spawn reference implementation of [`chunked`]: identical
/// chunk geometry, state assignment and ascending merge order, with a
/// fresh `std::thread::scope` spawn per chunk instead of the pool.
/// Kept callable so the equivalence suite can property-test pooled
/// against scoped execution (bitwise-identical results for any worker
/// count); also the fallback for calls wider than the pool's per-call
/// task budget.
pub fn chunked_scoped<D, W, R, F, M>(
    threads: usize,
    data: D,
    states: &mut [W],
    init: R,
    body: F,
    merge: M,
) -> R
where
    D: Split + Send,
    W: Send,
    R: Send,
    F: Fn(usize, D, &mut W) -> R + Sync,
    M: Fn(R, R) -> R,
{
    assert!(!states.is_empty(), "chunked needs at least one worker state");
    let n = data.chunk_len();
    let threads = threads.min(states.len()).max(1);
    if threads <= 1 || n == 0 {
        let r = body(0, data, &mut states[0]);
        return merge(init, r);
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = data;
        let mut start = 0usize;
        let mut handles = Vec::with_capacity(threads);
        for state in states.iter_mut() {
            let take = chunk.min(rest.chunk_len());
            if take == 0 {
                break;
            }
            let (head, tail) = rest.split_at(take);
            rest = tail;
            let s0 = start;
            start += take;
            let body = &body;
            handles.push(s.spawn(move || body(s0, head, state)));
        }
        let mut acc = init;
        for h in handles {
            acc = merge(acc, h.join().expect("chunked worker panicked"));
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_fill_identically() {
        let run = |threads: usize| {
            let mut out = vec![0usize; 1000];
            let mut units = vec![(); threads];
            let total = chunked(
                threads,
                out.as_mut_slice(),
                &mut units,
                0usize,
                |s0, chunk, _| {
                    for (k, v) in chunk.iter_mut().enumerate() {
                        *v = (s0 + k) * 3;
                    }
                    chunk.len()
                },
                |a, b| a + b,
            );
            assert_eq!(total, 1000);
            out
        };
        let seq = run(1);
        for threads in [2, 3, 7, 16] {
            assert_eq!(run(threads), seq, "threads = {threads}");
        }
    }

    #[test]
    fn tuple_split_keeps_slices_aligned() {
        let src: Vec<u64> = (0..513).collect();
        let mut dst = vec![0u64; 513];
        let mut units = vec![(); 4];
        chunked(
            4,
            (src.as_slice(), dst.as_mut_slice()),
            &mut units,
            (),
            |s0, (s, d), _| {
                for (k, (x, y)) in s.iter().zip(d.iter_mut()).enumerate() {
                    *y = x + s0 as u64 - (s0 + k) as u64 + k as u64; // = *x
                }
            },
            |(), ()| (),
        );
        assert_eq!(src, dst);
    }

    #[test]
    fn merge_runs_in_ascending_chunk_order() {
        let data = vec![0u8; 300];
        let mut units = vec![(); 3];
        let order = chunked(
            3,
            data.as_slice(),
            &mut units,
            Vec::new(),
            |s0, chunk, _| vec![(s0, chunk.len())],
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        assert_eq!(order, vec![(0, 100), (100, 100), (200, 100)]);
    }

    #[test]
    fn empty_data_runs_body_once_inline() {
        let mut hits = [0u32; 1];
        let empty: &mut [f64] = &mut [];
        chunked(
            8,
            empty,
            &mut hits[..],
            (),
            |_, chunk, state| {
                assert!(chunk.is_empty());
                *state += 1;
            },
            |(), ()| (),
        );
        assert_eq!(hits[0], 1);
    }

    #[test]
    fn threads_for_respects_grain_and_explicit_cap() {
        assert_eq!(threads_for(10, 4, 64), 1, "grain dominates small n");
        assert_eq!(threads_for(1000, 4, 64), 4, "explicit cap wins");
        assert_eq!(threads_for(0, 4, 64), 1, "empty problems stay sequential");
        assert!(threads_for(1 << 20, 0, 64) >= 1);
    }
}
