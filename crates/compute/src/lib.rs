//! # jc-compute — the SoA compute layer under every kernel crate
//!
//! The paper's claim is that a coupled multi-model simulation runs at
//! the speed of its fastest native kernels once the coupling layer
//! stays out of the way. With the coupling, transport and failover
//! layers allocation-free, the remaining wall-clock sits in the scalar
//! array-of-structs inner loops of the kernel crates. This crate holds
//! the two pieces those loops share:
//!
//! * [`soa`] — cache-line-aligned structure-of-arrays column buffers
//!   (`x/y/z/m`) with conversions from/to the `[f64; 3]` AoS particle
//!   sets, the memory layout the fixed-width batched kernels read; and
//! * [`par`] — the unified parallel chunking core ([`par::chunked`])
//!   that replaces the hand-rolled `std::thread::scope` +
//!   `split_at_mut` splitting loops previously duplicated across
//!   `jc_nbody`, `jc_sph` and `jc_treegrav`, backed by a persistent
//!   worker pool (spawn once, park between calls, hand chunks over
//!   warm bounded channels), plus the shared worker-count policy
//!   ([`par::threads_for`]) with its `JC_THREADS` environment override
//!   for reproducible runs on shared machines.
//!
//! It is a leaf crate on purpose: every kernel crate (and, through
//! them, the whole jungle runtime) layers on top of it, so it depends
//! on nothing but `std` and the offline `crossbeam` channel shim the
//! pool hands chunks over. `jc_core` re-exports it as `jc_core::soa` /
//! `jc_core::par` for runtime-level callers.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(unreachable_pub)]

pub mod par;
mod pool;
pub mod soa;

pub use par::{chunked, chunked_scoped, threads_for};
pub use soa::{reduce_lanes, AlignedF64, Soa3, SoaBodies, LANES};
