//! The persistent worker pool behind [`crate::par::chunked`].
//!
//! `chunked` used to spawn fresh scoped threads on every call — one
//! `clone`/`mmap`/`futex` round per worker per kernel invocation, paid
//! hundreds of times per simulated step once several kernels fan out.
//! This module replaces that with a process-global pool of parked
//! threads: each worker owns a bounded channel (the `crossbeam` shim,
//! array-backed, so a warm send performs no allocation) and blocks in
//! `recv()` until a chunk of work is handed over.
//!
//! ## Handoff protocol
//!
//! A call that fans out to `c` chunks builds `c - 1` [`Task`]s *on the
//! caller's stack*, sends a raw pointer to each ([`Job`]) to a distinct
//! worker, runs the last chunk inline on the calling thread, then waits
//! on each task's [`Latch`] in ascending chunk order and folds the
//! results. Chunk geometry, state assignment (`states[k]` → chunk `k`)
//! and merge order are exactly those of the scoped-spawn
//! implementation ([`crate::par::chunked_scoped`]), so results are
//! bitwise identical for any worker count — the bench crate
//! property-tests pooled against scoped execution.
//!
//! ## Soundness
//!
//! Workers receive raw pointers into the caller's stack frame, so the
//! frame must outlive every submitted task. [`TasksGuard`] enforces
//! this on *every* exit path (including caller-side panics in the
//! inline body or a merge): its `Drop` waits for each submitted task's
//! latch and then drops the task in place. A worker-side panic is
//! caught with `catch_unwind`, carried back through the task's result
//! slot, and re-raised on the caller via `resume_unwind` — after the
//! guard has waited for the remaining workers.
//!
//! ## Determinism and allocation
//!
//! The pool's internals are replay-critical scope (jc-lint
//! `determinism`): no hash-seeded containers, no wall-clock reads —
//! workers are indexed by position and wake-ups are pure channel/latch
//! operations. In steady state (pool spawned, channel buffers warm) a
//! parallel `chunked` call performs **zero heap allocations** on the
//! calling thread: tasks live in a fixed stack array, latches are
//! futex-backed `Mutex`/`Condvar`, and sends into a warm bounded
//! channel do not allocate (the `zero_alloc` suite pins this).

use crate::par::Split;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};

/// Most chunks a single `chunked` call may fan out to through the pool
/// (the caller runs one chunk inline, so at most `MAX_CHUNKS - 1` tasks
/// are ever in flight per call). Calls requesting more fall back to
/// scoped spawning — geometry and merge order are identical either way.
pub(crate) const MAX_CHUNKS: usize = 128;

/// One-shot completion flag: worker sets it after writing the task's
/// result; the caller (and the cleanup guard) block on it.
struct Latch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Latch {
        Latch { done: Mutex::new(false), cv: Condvar::new() }
    }

    /// Mark complete. Notifies while holding the lock so a woken waiter
    /// cannot free the latch before this call is done touching it.
    fn set(&self) {
        let mut done = self.done.lock().expect("latch poisoned");
        *done = true;
        self.cv.notify_all();
    }

    /// Block until [`Latch::set`]. Idempotent — the cleanup guard waits
    /// again after the happy path already has.
    fn wait(&self) {
        let mut done = self.done.lock().expect("latch poisoned");
        while !*done {
            done = self.cv.wait(done).expect("latch poisoned");
        }
    }
}

/// Type-erased prefix of every [`Task`] (`repr(C)` puts it first, so a
/// `*mut TaskHeader` is also a pointer to the task it heads).
#[repr(C)]
struct TaskHeader {
    /// Monomorphized runner: casts the header pointer back to the
    /// concrete `Task` and executes it.
    // SAFETY: callers must pass a pointer to the live, initialized
    // `Task` this header heads (the submit path stores `run_task::<D,
    // W, R, F>` next to the matching task, so the cast is always back
    // to the true concrete type).
    run: unsafe fn(*mut TaskHeader),
    latch: Latch,
}

/// One staged chunk of a `chunked` call, built on the caller's stack.
/// `repr(C)` so the header is its prefix.
#[repr(C)]
struct Task<D, W, R, F> {
    header: TaskHeader,
    /// Global start index of this chunk.
    start: usize,
    /// The chunk's data slice(s); taken by the worker.
    data: Option<D>,
    /// The chunk's per-worker state (`&mut W` erased; disjoint per task).
    state: *mut W,
    /// The shared body closure (`&F` erased; `F: Sync`).
    body: *const F,
    /// Written by the worker before the latch is set; `Err` carries a
    /// caught panic payload.
    result: Option<std::thread::Result<R>>,
}

/// What travels over the channel: a pointer to a caller-stack task.
///
/// SAFETY invariant: the pointee outlives the handoff — enforced by
/// [`TasksGuard`], which keeps the caller's frame alive until every
/// submitted task's latch has been set.
struct Job(*mut TaskHeader);

// SAFETY: `Job` is a courier for a `*mut Task<…>` whose pointees are
// `Send`-checked at the `run_chunked` boundary (`D: Send`, `W: Send`,
// `R: Send`, `F: Sync`); the raw pointer itself carries no thread
// affinity.
unsafe impl Send for Job {}

/// Execute one staged task: take the chunk, run the body under
/// `catch_unwind`, store the result, set the latch.
///
/// # Safety
///
/// `h` must point to a live, fully initialized `Task<D, W, R, F>` whose
/// `state`/`body` pointers are valid and unaliased for the duration of
/// the call (the caller submits each task to exactly one worker and
/// does not touch it until its latch is set).
unsafe fn run_task<D, W, R, F>(h: *mut TaskHeader)
where
    F: Fn(usize, D, &mut W) -> R,
{
    let task = h as *mut Task<D, W, R, F>;
    // SAFETY: per the function contract, `task` is live and exclusively
    // ours until the latch below is set.
    let t = unsafe { &mut *task };
    let data = t.data.take().expect("task submitted without data");
    // SAFETY: `body` erases a `&F` and `state` a `&mut W`, both valid
    // for the caller's frame which outlives this call (TasksGuard).
    let (body, state) = unsafe { (&*t.body, &mut *t.state) };
    let start = t.start;
    t.result = Some(catch_unwind(AssertUnwindSafe(|| body(start, data, state))));
    t.header.latch.set();
}

/// A parked worker: the sending half of its private bounded channel.
struct Worker {
    tx: crossbeam::channel::Sender<Job>,
}

/// The process-global pool. Workers are spawned lazily (up to the
/// demand actually seen), never torn down, and park in `recv()` between
/// chunks. Indexed access keeps the chunk→worker mapping positional —
/// no work stealing, no ordering nondeterminism.
struct Pool {
    workers: Mutex<Vec<Worker>>,
}

thread_local! {
    /// Set for the lifetime of every pool worker thread: a `chunked`
    /// call from *inside* a worker must run inline (submitting to the
    /// pool from a worker could hand a task to the submitting thread
    /// itself — deadlock).
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Is the current thread a pool worker?
pub(crate) fn on_worker_thread() -> bool {
    IS_POOL_WORKER.with(|f| f.get())
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool { workers: Mutex::new(Vec::new()) })
    }

    /// Grow to at least `count` workers (allocation happens only here,
    /// on first demand — the warm path is a length check).
    fn ensure(&self, count: usize) {
        let mut workers = self.workers.lock().expect("pool poisoned");
        while workers.len() < count {
            let idx = workers.len();
            // Capacity 1: each worker holds at most one in-flight chunk
            // per caller; a second concurrent caller blocks in `send`
            // until the worker drains — backpressure, not growth.
            let (tx, rx) = crossbeam::channel::bounded::<Job>(1);
            std::thread::Builder::new()
                .name(format!("jc-pool-{idx}"))
                .spawn(move || {
                    IS_POOL_WORKER.with(|f| f.set(true));
                    while let Ok(job) = rx.recv() {
                        // SAFETY: the sender (run_chunked) keeps the
                        // task alive until its latch is set, and sends
                        // each task exactly once.
                        unsafe { ((*job.0).run)(job.0) };
                    }
                })
                .expect("jc-pool worker spawn failed");
            workers.push(Worker { tx });
        }
    }

    /// Hand `job` to worker `k`. Falls back to running the task on the
    /// calling thread if the worker is unreachable (cannot happen while
    /// the process is healthy; insurance against a latch that would
    /// otherwise never be set).
    fn submit(&self, k: usize, job: Job) {
        let workers = self.workers.lock().expect("pool poisoned");
        let send = workers[k].tx.send(job);
        drop(workers);
        if let Err(crossbeam::channel::SendError(job)) = send {
            // SAFETY: same single-run contract as the worker-side call.
            unsafe { ((*job.0).run)(job.0) };
        }
    }
}

/// Keeps the caller's stack frame alive until every submitted task has
/// completed, then drops the tasks in place (releasing untaken results,
/// e.g. on a caller-side panic mid-merge). `first` points at the task
/// array; `submitted` counts initialized-and-sent tasks.
struct TasksGuard<D, W, R, F> {
    first: *mut Task<D, W, R, F>,
    submitted: usize,
}

impl<D, W, R, F> Drop for TasksGuard<D, W, R, F> {
    fn drop(&mut self) {
        for k in 0..self.submitted {
            // SAFETY: tasks `0..submitted` were fully initialized and
            // sent exactly once; waiting the latch (idempotent) makes
            // the worker's writes visible and guarantees it is done
            // touching the task before we drop it.
            unsafe {
                let t = self.first.add(k);
                (*t).header.latch.wait();
                std::ptr::drop_in_place(t);
            }
        }
    }
}

/// Pool-backed parallel section of [`crate::par::chunked`]: same chunk
/// geometry, state assignment and ascending merge order as
/// [`crate::par::chunked_scoped`], with persistent workers instead of
/// per-call spawns. Caller guarantees `threads >= 2`, `n > 0` and
/// `states.len() >= threads`.
pub(crate) fn run_chunked<D, W, R, F, M>(
    threads: usize,
    data: D,
    states: &mut [W],
    init: R,
    body: &F,
    merge: M,
) -> R
where
    D: Split + Send,
    W: Send,
    R: Send,
    F: Fn(usize, D, &mut W) -> R + Sync,
    M: Fn(R, R) -> R,
{
    let n = data.chunk_len();
    let chunk = n.div_ceil(threads);
    let nchunks = n.div_ceil(chunk);
    debug_assert!(nchunks <= threads && nchunks <= states.len());
    if nchunks <= 1 {
        let r = body(0, data, &mut states[0]);
        return merge(init, r);
    }
    let pool = Pool::global();
    pool.ensure(nchunks - 1);

    let (worker_states, last_state) = states.split_at_mut(nchunks - 1);
    let mut tasks: [MaybeUninit<Task<D, W, R, F>>; MAX_CHUNKS] =
        [const { MaybeUninit::uninit() }; MAX_CHUNKS];
    // All task access below goes through this one base pointer (the
    // array itself is not touched again until it drops, uninit —
    // a no-op), so the guard's pointer stays valid throughout.
    let base = tasks.as_mut_ptr() as *mut Task<D, W, R, F>;
    let mut guard = TasksGuard { first: base, submitted: 0 };

    let mut rest = data;
    let mut start = 0usize;
    for (k, state) in worker_states.iter_mut().enumerate() {
        let (head, tail) = rest.split_at(chunk);
        rest = tail;
        // SAFETY: `k < nchunks - 1 <= MAX_CHUNKS`, so the slot is in
        // bounds; writing through the base pointer initializes it.
        let slot = unsafe { base.add(k) };
        // SAFETY: `slot` is in bounds (previous line) and writing a
        // whole `Task` into the `MaybeUninit` slot initializes it; the
        // slot is not yet shared (submit happens below).
        unsafe {
            slot.write(Task {
                header: TaskHeader { run: run_task::<D, W, R, F>, latch: Latch::new() },
                start,
                data: Some(head),
                state: state as *mut W,
                body: body as *const F,
                result: None,
            });
        }
        start += chunk;
        pool.submit(k, Job(slot as *mut TaskHeader));
        guard.submitted += 1;
    }

    // The last chunk runs inline on the calling thread — overlapped
    // with the workers, and the reason a warm parallel call needs no
    // spawn at all. A panic here unwinds through the guard, which waits
    // for the in-flight workers before the frame dies.
    let r_last = body(start, rest, &mut last_state[0]);

    let mut acc = init;
    for k in 0..guard.submitted {
        // SAFETY: task `k` was initialized and submitted above; the
        // latch wait orders the worker's result write before our read.
        let t = unsafe { &mut *guard.first.add(k) };
        t.header.latch.wait();
        match t.result.take().expect("worker set latch without a result") {
            Ok(r) => acc = merge(acc, r),
            // Propagate the worker's panic on the caller, after the
            // guard has waited for the remaining in-flight tasks.
            Err(payload) => {
                drop(acc);
                drop(guard);
                resume_unwind(payload);
            }
        }
    }
    acc = merge(acc, r_last);
    drop(guard); // all latches already waited; frees the task slots
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_matches_scoped_geometry() {
        // 5 chunks over 500 targets: 4 worker tasks + 1 inline.
        let data = vec![1u32; 500];
        let mut units = vec![(); 5];
        let spans = run_chunked(
            5,
            data.as_slice(),
            &mut units,
            Vec::new(),
            &|s0, c: &[u32], _: &mut ()| vec![(s0, c.len())],
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        assert_eq!(spans, vec![(0, 100), (100, 100), (200, 100), (300, 100), (400, 100)]);
    }

    #[test]
    fn short_data_uses_fewer_chunks_than_threads() {
        // n = 5, threads = 4 -> chunk = 2 -> 3 chunks only.
        let data = [0u8; 5];
        let mut units = vec![(); 4];
        let spans = run_chunked(
            4,
            &data[..],
            &mut units,
            Vec::new(),
            &|s0, c: &[u8], _: &mut ()| vec![(s0, c.len())],
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        assert_eq!(spans, vec![(0, 2), (2, 2), (4, 1)]);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let data = vec![0u8; 200];
        let mut units = vec![(); 2];
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_chunked(
                2,
                data.as_slice(),
                &mut units,
                (),
                &|s0, _: &[u8], _: &mut ()| {
                    if s0 == 0 {
                        panic!("worker chunk panicked");
                    }
                },
                |(), ()| (),
            )
        }));
        assert!(caught.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn nested_calls_from_a_worker_run_inline() {
        let data = vec![0u8; 256];
        let mut units = vec![(); 2];
        let nested_inline = run_chunked(
            2,
            data.as_slice(),
            &mut units,
            true,
            &|_, chunk: &[u8], _: &mut ()| {
                if !on_worker_thread() {
                    return true; // the inline chunk runs on the caller
                }
                // A chunked call from a pool worker must not re-enter
                // the pool: par::chunked's worker check routes it
                // inline. Simulate via the public entry point.
                let mut inner_units = [(); 4];
                let calls = crate::par::chunked(
                    4,
                    chunk,
                    &mut inner_units[..],
                    0u32,
                    |_, _: &[u8], _: &mut ()| 1u32,
                    |a, b| a + b,
                );
                calls == 1 // inline = exactly one body call
            },
            |a, b| a && b,
        );
        assert!(nested_inline, "nested chunked on a worker thread must run inline");
    }
}
