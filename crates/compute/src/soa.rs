//! Cache-line-aligned structure-of-arrays column buffers.
//!
//! The kernel crates store particles as AoS (`Vec<[f64; 3]>`) because
//! that is what the wire protocol, the checkpoint layer and the AMUSE
//! channel API exchange. The batched compute paths instead read *columns*
//! — `x[], y[], z[], m[]` — so that a fixed-width inner loop touches
//! contiguous, 64-byte-aligned memory the compiler can turn into packed
//! vector loads. [`AlignedF64`] is one such column; [`Soa3`] is a
//! position/velocity triple of them; [`SoaBodies`] is the full
//! `x/y/z/m(+velocity)` source-particle mirror the N-body kernels scan.
//!
//! Conversion is O(n) against the O(n²)/O(n·k) kernels that follow, and
//! the buffers are reusable: steady-state refills perform no heap
//! allocation once capacity is warm (pinned by the `zero_alloc` suite).

/// Fixed SIMD batch width of the lane-accumulator kernels (f64 lanes).
///
/// Four doubles is one AVX2 register (half an AVX-512 one); the kernels
/// accumulate into `[f64; LANES]` arrays and reduce in a fixed pairwise
/// order — `(l0 + l1) + (l2 + l3)` — so results are bitwise stable from
/// run to run and independent of the worker-thread count.
pub const LANES: usize = 4;

/// Fixed-order reduction of one lane-accumulator array:
/// `(l0 + l1) + (l2 + l3)`. Every [`LANES`]-wide kernel in the
/// workspace funnels its accumulators through this, which is what makes
/// the SoA compute paths bitwise stable from run to run.
#[inline(always)]
pub fn reduce_lanes(v: [f64; LANES]) -> f64 {
    (v[0] + v[1]) + (v[2] + v[3])
}

/// One 64-byte cache line of f64 lanes — the allocation unit that keeps
/// every column 64-byte aligned without a custom allocator.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct CacheLine([f64; 8]);

const LINE: usize = 8;

/// A growable, 64-byte-aligned column of `f64` values.
///
/// Backed by whole cache lines; the tail lanes of the last line are kept
/// zeroed so padded reads (a full-width batch overhanging `len`) are
/// well-defined. Deref gives the `len`-bounded `&[f64]` view.
#[derive(Default)]
pub struct AlignedF64 {
    lines: Vec<CacheLine>,
    len: usize,
}

impl AlignedF64 {
    /// Empty column (no allocation until first use).
    pub fn new() -> AlignedF64 {
        AlignedF64::default()
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resize to `n` elements; new elements (and the alignment padding)
    /// are zero. Shrinking keeps capacity.
    pub fn resize(&mut self, n: usize) {
        self.lines.resize(n.div_ceil(LINE), CacheLine([0.0; LINE]));
        // zero the tail so stale values from a longer previous fill
        // never leak into padded whole-line reads
        let full_lines = self.lines.len().saturating_sub(1);
        if let Some(last) = self.lines.last_mut() {
            for lane in (n - full_lines * LINE)..LINE {
                last.0[lane] = 0.0;
            }
        }
        self.len = n;
    }

    /// Replace the contents with `src` (resizing as needed).
    pub fn copy_from(&mut self, src: &[f64]) {
        self.resize(src.len());
        self.as_mut_slice().copy_from_slice(src);
    }

    /// The values as a slice (64-byte-aligned base pointer).
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: `CacheLine` is `repr(C, align(64))` over `[f64; 8]`,
        // so `lines` is one contiguous, initialized f64 run of
        // `lines.len() * LINE` elements; `resize` maintains
        // `len <= lines.len() * LINE`, so the first `len` are in
        // bounds. The cast pointer inherits the allocation's
        // provenance and the borrow ties the slice to `&self`.
        unsafe { std::slice::from_raw_parts(self.lines.as_ptr().cast::<f64>(), self.len) }
    }

    /// The values as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: same layout argument as `as_slice`; `&mut self`
        // guarantees the run is uniquely borrowed for the lifetime of
        // the returned slice.
        unsafe { std::slice::from_raw_parts_mut(self.lines.as_mut_ptr().cast::<f64>(), self.len) }
    }
}

impl std::ops::Deref for AlignedF64 {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for AlignedF64 {
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

/// Three aligned columns holding a `[f64; 3]` vector field (positions,
/// velocities, accelerations) in SoA layout.
#[derive(Default)]
pub struct Soa3 {
    /// X components.
    pub x: AlignedF64,
    /// Y components.
    pub y: AlignedF64,
    /// Z components.
    pub z: AlignedF64,
}

impl Soa3 {
    /// Empty columns (no allocation until first use).
    pub fn new() -> Soa3 {
        Soa3::default()
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Is the field empty?
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Transpose an AoS vector field into the three columns.
    pub fn fill_from(&mut self, aos: &[[f64; 3]]) {
        let n = aos.len();
        self.x.resize(n);
        self.y.resize(n);
        self.z.resize(n);
        let (x, y, z) = (self.x.as_mut_slice(), self.y.as_mut_slice(), self.z.as_mut_slice());
        for (i, v) in aos.iter().enumerate() {
            x[i] = v[0];
            y[i] = v[1];
            z[i] = v[2];
        }
    }

    /// Transpose the columns back into an AoS vector field
    /// (`aos.len()` must equal [`Soa3::len`]).
    pub fn write_to(&self, aos: &mut [[f64; 3]]) {
        assert_eq!(aos.len(), self.len(), "AoS buffer length mismatch");
        for (i, v) in aos.iter_mut().enumerate() {
            *v = [self.x[i], self.y[i], self.z[i]];
        }
    }
}

/// The full SoA mirror of a source-particle set: `x/y/z` position and
/// velocity columns plus the mass column — what one N-body force
/// evaluation scans per target.
#[derive(Default)]
pub struct SoaBodies {
    /// Position columns.
    pub pos: Soa3,
    /// Velocity columns.
    pub vel: Soa3,
    /// Masses.
    pub mass: AlignedF64,
}

impl SoaBodies {
    /// Empty mirror (no allocation until first use).
    pub fn new() -> SoaBodies {
        SoaBodies::default()
    }

    /// Particle count.
    pub fn len(&self) -> usize {
        self.mass.len()
    }

    /// Is the mirror empty?
    pub fn is_empty(&self) -> bool {
        self.mass.is_empty()
    }

    /// Refill every column from the AoS set (all inputs the same length).
    pub fn fill_from(&mut self, mass: &[f64], pos: &[[f64; 3]], vel: &[[f64; 3]]) {
        assert_eq!(mass.len(), pos.len(), "mass/pos length mismatch");
        assert_eq!(mass.len(), vel.len(), "mass/vel length mismatch");
        self.mass.copy_from(mass);
        self.pos.fill_from(pos);
        self.vel.fill_from(vel);
    }

    /// Refill the mass and position columns only (for kernels that never
    /// read velocities, e.g. a potential sum); the velocity columns are
    /// emptied so stale values cannot be read by mistake.
    pub fn fill_from_positions(&mut self, mass: &[f64], pos: &[[f64; 3]]) {
        assert_eq!(mass.len(), pos.len(), "mass/pos length mismatch");
        self.mass.copy_from(mass);
        self.pos.fill_from(pos);
        self.vel.fill_from(&[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_cache_line_aligned() {
        let mut c = AlignedF64::new();
        c.resize(100);
        assert_eq!(c.as_slice().as_ptr() as usize % 64, 0);
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn resize_zeroes_growth_and_padding() {
        let mut c = AlignedF64::new();
        c.copy_from(&[1.0; 13]);
        c.resize(5);
        assert_eq!(c.len(), 5);
        assert_eq!(c.as_slice(), &[1.0; 5]);
        // the padding lanes past len were re-zeroed: growing back in
        // must expose zeros, not the stale 1.0s
        c.resize(13);
        assert_eq!(&c.as_slice()[5..], &[0.0; 8]);
    }

    #[test]
    fn soa3_round_trips_aos() {
        let aos: Vec<[f64; 3]> = (0..37).map(|i| [i as f64, -(i as f64), 0.5 * i as f64]).collect();
        let mut soa = Soa3::new();
        soa.fill_from(&aos);
        assert_eq!(soa.len(), 37);
        assert_eq!(soa.x[3], 3.0);
        assert_eq!(soa.y[3], -3.0);
        let mut back = vec![[0.0; 3]; 37];
        soa.write_to(&mut back);
        assert_eq!(aos, back);
    }

    #[test]
    fn bodies_refill_is_allocation_stable() {
        let mass = vec![1.0; 64];
        let pos = vec![[1.0, 2.0, 3.0]; 64];
        let vel = vec![[0.0; 3]; 64];
        let mut b = SoaBodies::new();
        b.fill_from(&mass, &pos, &vel);
        let p0 = b.mass.as_slice().as_ptr();
        b.fill_from(&mass, &pos, &vel);
        assert_eq!(b.mass.as_slice().as_ptr(), p0, "warm refill must not reallocate");
        assert_eq!(b.len(), 64);
        assert_eq!(b.pos.z[10], 3.0);
    }
}
