//! # jc-stellar — SSE-style parameterized stellar evolution
//!
//! Reproduction of the role SSE (Hurley, Pols & Tout 2000 \[8\]) plays in the
//! paper's embedded-star-cluster simulation: *"SSE is a so-called
//! parameterized model, which does a simple lookup of a star's age and
//! initial mass to determine its current state. Since this lookup is nearly
//! trivial, SSE is simply a sequential (Fortran) application."*
//!
//! We implement simplified analytic fits in the spirit of Hurley et al. —
//! mass-dependent main-sequence lifetimes, luminosity/radius tracks through
//! giant phases, wind mass loss, and terminal fates (white dwarf / neutron
//! star / black hole with supernovae for massive stars) — and then, exactly
//! as SSE does, *tabulate* them into a (mass × age) lookup grid that the
//! runtime model interpolates ([`table::EvolutionTable`]). The supernova
//! events drive the gas dynamics of the embedded-cluster scenario ("several
//! of the bigger stars exploding in a supernova during the simulation").
//!
//! The public entry point is [`SseModel`]: a population of stars evolved to
//! requested times, reporting mass loss and supernova events, which the
//! AMUSE coupler feeds back into the gravity and gas models.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod fits;
pub mod model;
pub mod table;

pub use fits::{remnant_of, StellarPhase, TrackPoint};
pub use model::{SseModel, StarState, StellarEvent};
pub use table::EvolutionTable;
