//! The SSE worker model: a star population evolved on demand.

use crate::fits;
use crate::table::{supernova_between, EvolutionTable};
use crate::StellarPhase;

/// State of one star as reported to the coupler.
#[derive(Clone, Copy, Debug)]
pub struct StarState {
    /// Initial (ZAMS) mass, MSun.
    pub initial_mass: f64,
    /// Current mass, MSun.
    pub mass: f64,
    /// Radius, RSun.
    pub radius: f64,
    /// Luminosity, LSun.
    pub luminosity: f64,
    /// Phase.
    pub phase: StellarPhase,
    /// Current age, Myr.
    pub age_myr: f64,
}

/// Events produced while evolving the population.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StellarEvent {
    /// A star went supernova between the previous and the new model time.
    Supernova {
        /// Index of the star.
        star: usize,
        /// Mass ejected into the surrounding gas, MSun.
        ejected_mass: f64,
        /// Energy injected, in units of 1e44 J (≈ one canonical SN is 10).
        energy_foe: f64,
    },
    /// Wind mass loss of at least 1e-4 MSun since the last step.
    WindMassLoss {
        /// Index of the star.
        star: usize,
        /// Mass lost, MSun.
        mass: f64,
    },
}

/// The SSE model: owns a population, a lookup table, and the model clock.
pub struct SseModel {
    table: EvolutionTable,
    z: f64,
    initial_masses: Vec<f64>,
    states: Vec<StarState>,
    time_myr: f64,
    /// Supernovae that already fired (indices), so each fires once.
    exploded: Vec<bool>,
    /// Cumulative lookup count (for the performance model).
    pub lookups: u64,
}

impl SseModel {
    /// Create a model from ZAMS masses at metallicity `z`.
    pub fn new(initial_masses: Vec<f64>, z: f64) -> SseModel {
        let table = EvolutionTable::standard(z);
        let states = initial_masses
            .iter()
            .map(|&m| {
                let p = table.lookup(m, 0.0);
                StarState {
                    initial_mass: m,
                    mass: p.mass,
                    radius: p.radius,
                    luminosity: p.luminosity,
                    phase: p.phase,
                    age_myr: 0.0,
                }
            })
            .collect();
        let n = initial_masses.len();
        SseModel {
            table,
            z,
            initial_masses,
            states,
            time_myr: 0.0,
            exploded: vec![false; n],
            lookups: 0,
        }
    }

    /// Rebuild a model at a checkpointed time. Star states are a pure
    /// function of (initial mass, metallicity, age), so the lookup at
    /// `time_myr` reproduces them bitwise; the `exploded` flags are the
    /// only evolution history that must be carried explicitly (each
    /// supernova fires exactly once).
    pub fn restored(
        initial_masses: Vec<f64>,
        z: f64,
        time_myr: f64,
        exploded: Vec<bool>,
    ) -> SseModel {
        assert_eq!(initial_masses.len(), exploded.len(), "one exploded flag per star");
        let mut m = SseModel::new(initial_masses, z);
        if time_myr > 0.0 {
            // fast-forward (events discarded: they already happened)
            let _ = m.evolve_to(time_myr);
        }
        m.exploded = exploded;
        m
    }

    /// Metallicity the population was built with.
    pub fn metallicity(&self) -> f64 {
        self.z
    }

    /// ZAMS masses, MSun.
    pub fn initial_masses(&self) -> &[f64] {
        &self.initial_masses
    }

    /// Which stars have already gone supernova.
    pub fn exploded(&self) -> &[bool] {
        &self.exploded
    }

    /// Number of stars.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Is the population empty?
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Current model time, Myr.
    pub fn model_time_myr(&self) -> f64 {
        self.time_myr
    }

    /// Star states.
    pub fn states(&self) -> &[StarState] {
        &self.states
    }

    /// Total stellar mass, MSun.
    pub fn total_mass(&self) -> f64 {
        self.states.iter().map(|s| s.mass).sum()
    }

    /// Evolve the population to `t_myr` (must not go backwards), returning
    /// the events that occurred in `(previous_time, t_myr]`.
    pub fn evolve_to(&mut self, t_myr: f64) -> Vec<StellarEvent> {
        assert!(
            t_myr + 1e-12 >= self.time_myr,
            "stellar evolution cannot run backwards ({} -> {})",
            self.time_myr,
            t_myr
        );
        let mut events = Vec::new();
        let t0 = self.time_myr;
        for i in 0..self.states.len() {
            let m0 = self.initial_masses[i];
            let before = self.states[i].mass;
            let p = self.table.lookup(m0, t_myr);
            self.lookups += 1;
            self.states[i] = StarState {
                initial_mass: m0,
                mass: p.mass,
                radius: p.radius,
                luminosity: p.luminosity,
                phase: p.phase,
                age_myr: t_myr,
            };
            if !self.exploded[i] && supernova_between(m0, self.z, t0, t_myr) {
                self.exploded[i] = true;
                let (_, remnant) = fits::remnant_of(m0);
                // everything above the remnant that wasn't already blown
                // off in winds is ejected now
                let ejected = (before - remnant).max(0.0);
                events.push(StellarEvent::Supernova {
                    star: i,
                    ejected_mass: ejected,
                    energy_foe: 10.0,
                });
            } else {
                let lost = before - self.states[i].mass;
                if lost > 1e-4 {
                    events.push(StellarEvent::WindMassLoss { star: i, mass: lost });
                }
            }
        }
        self.time_myr = t_myr;
        events
    }

    /// Modeled cost of the last `evolve_to` in floating-point operations.
    pub fn step_flops(&self) -> f64 {
        self.states.len() as f64 * EvolutionTable::LOOKUP_FLOPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_evolves_forward() {
        let mut m = SseModel::new(vec![1.0, 5.0, 20.0], 0.02);
        assert_eq!(m.len(), 3);
        let ev = m.evolve_to(1.0);
        assert!(ev.is_empty(), "{ev:?}");
        assert_eq!(m.model_time_myr(), 1.0);
        for s in m.states() {
            assert_eq!(s.phase, StellarPhase::MainSequence);
        }
    }

    #[test]
    #[should_panic]
    fn backwards_evolution_panics() {
        let mut m = SseModel::new(vec![1.0], 0.02);
        m.evolve_to(5.0);
        m.evolve_to(1.0);
    }

    #[test]
    fn massive_star_explodes_once() {
        let mut m = SseModel::new(vec![20.0], 0.02);
        let t_end = fits::t_total_myr(20.0, 0.02);
        let mut sn = 0;
        let mut ejected = 0.0;
        // step across the explosion in small increments
        let mut t = 0.0;
        while t < t_end * 1.5 {
            t += t_end / 20.0;
            for ev in m.evolve_to(t) {
                if let StellarEvent::Supernova { ejected_mass, .. } = ev {
                    sn += 1;
                    ejected = ejected_mass;
                }
            }
        }
        assert_eq!(sn, 1, "exactly one supernova");
        assert!(ejected > 10.0, "a 20 MSun star ejects most of itself: {ejected}");
        assert_eq!(m.states()[0].phase, StellarPhase::NeutronStar);
        assert!((m.states()[0].mass - 1.4).abs() < 1e-6);
    }

    #[test]
    fn winds_reported_during_giant_phase() {
        let mut m = SseModel::new(vec![5.0], 0.02);
        let tms = fits::t_ms_myr(5.0, 0.02);
        m.evolve_to(tms * 1.001);
        let ev = m.evolve_to(tms * 1.05);
        assert!(ev.iter().any(|e| matches!(e, StellarEvent::WindMassLoss { .. })), "{ev:?}");
    }

    #[test]
    fn total_mass_never_increases() {
        let mut m = SseModel::new(vec![0.5, 1.0, 3.0, 9.0, 30.0], 0.02);
        let mut last = m.total_mass();
        for k in 1..100 {
            m.evolve_to(k as f64 * 2.0);
            let now = m.total_mass();
            assert!(now <= last + 1e-9);
            last = now;
        }
    }

    #[test]
    fn lookup_cost_scales_with_population() {
        let mut m = SseModel::new(vec![1.0; 100], 0.02);
        m.evolve_to(1.0);
        assert_eq!(m.lookups, 100);
        assert_eq!(m.step_flops(), 100.0 * EvolutionTable::LOOKUP_FLOPS);
    }
}
