//! The SSE lookup table: (initial mass × age fraction) → track point.
//!
//! SSE's defining trait in the paper is that evolution is "a simple lookup
//! of a star's age and initial mass". We tabulate the analytic fits on a
//! log-mass × age-fraction grid at construction and bilinearly interpolate
//! at query time — the same speed/accuracy trade a real parameterized model
//! makes.

use crate::fits::{self, TrackPoint};

/// A precomputed evolution table for one metallicity.
pub struct EvolutionTable {
    z: f64,
    masses: Vec<f64>,    // grid of initial masses (MSun), log-spaced
    age_fracs: Vec<f64>, // grid of age / t_total in [0, 1.1]
    // rows: mass-major [mass][age_frac]
    lum: Vec<f64>,
    rad: Vec<f64>,
    mass_now: Vec<f64>,
}

impl EvolutionTable {
    /// Build a table with `nm` mass points in `[m_lo, m_hi]` and `na` age
    /// fractions.
    pub fn new(z: f64, m_lo: f64, m_hi: f64, nm: usize, na: usize) -> EvolutionTable {
        assert!(m_lo > 0.0 && m_hi > m_lo && nm >= 2 && na >= 2);
        let masses: Vec<f64> = (0..nm)
            .map(|i| {
                let f = i as f64 / (nm - 1) as f64;
                (m_lo.ln() + f * (m_hi / m_lo).ln()).exp()
            })
            .collect();
        let age_fracs: Vec<f64> = (0..na).map(|j| 1.1 * j as f64 / (na - 1) as f64).collect();
        let mut lum = Vec::with_capacity(nm * na);
        let mut rad = Vec::with_capacity(nm * na);
        let mut mass_now = Vec::with_capacity(nm * na);
        for &m in &masses {
            let total = fits::t_total_myr(m, z);
            for &f in &age_fracs {
                let p = fits::evaluate(m, z, f * total);
                lum.push(p.luminosity);
                rad.push(p.radius);
                mass_now.push(p.mass);
            }
        }
        EvolutionTable { z, masses, age_fracs, lum, rad, mass_now }
    }

    /// Default table for the embedded-cluster simulation: 0.1–100 MSun.
    pub fn standard(z: f64) -> EvolutionTable {
        EvolutionTable::new(z, 0.1, 100.0, 64, 64)
    }

    /// Metallicity this table was built for.
    pub fn metallicity(&self) -> f64 {
        self.z
    }

    fn bracket(grid: &[f64], x: f64) -> (usize, f64) {
        if x <= grid[0] {
            return (0, 0.0);
        }
        if x >= *grid.last().unwrap() {
            return (grid.len() - 2, 1.0);
        }
        // grids are tiny (≤ 64): linear scan beats binary search here and
        // is simpler (perf-book: handle the common small case directly)
        for i in 0..grid.len() - 1 {
            if x < grid[i + 1] {
                let t = (x - grid[i]) / (grid[i + 1] - grid[i]);
                return (i, t);
            }
        }
        (grid.len() - 2, 1.0)
    }

    /// Interpolated lookup. `phase` is taken from the analytic fit (phases
    /// are discrete and interpolate badly); the continuous fields come from
    /// the table.
    pub fn lookup(&self, m0: f64, age_myr: f64) -> TrackPoint {
        let total = fits::t_total_myr(m0, self.z);
        let frac = (age_myr / total).min(1.1);
        let (i, tm) = Self::bracket(&self.masses, m0);
        let (j, ta) = Self::bracket(&self.age_fracs, frac);
        let na = self.age_fracs.len();
        let idx = |i: usize, j: usize| i * na + j;
        let bilerp = |v: &[f64]| -> f64 {
            let v00 = v[idx(i, j)];
            let v01 = v[idx(i, j + 1)];
            let v10 = v[idx(i + 1, j)];
            let v11 = v[idx(i + 1, j + 1)];
            (v00 * (1.0 - tm) + v10 * tm) * (1.0 - ta) + (v01 * (1.0 - tm) + v11 * tm) * ta
        };
        let phase = fits::evaluate(m0, self.z, age_myr).phase;
        // Remnant fields must not be smeared by interpolation across the
        // collapse: take them analytically.
        if phase.is_remnant() {
            return fits::evaluate(m0, self.z, age_myr);
        }
        TrackPoint {
            phase,
            mass: bilerp(&self.mass_now).min(m0),
            radius: bilerp(&self.rad).max(1e-6),
            luminosity: bilerp(&self.lum).max(0.0),
        }
    }

    /// The approximate cost of one lookup in floating-point operations
    /// (used by the performance model): a handful of interpolations.
    pub const LOOKUP_FLOPS: f64 = 100.0;
}

/// Convenience: does the phase transition between two ages include a
/// supernova for this star?
pub fn supernova_between(m0: f64, z: f64, age0: f64, age1: f64) -> bool {
    if !fits::explodes(m0) {
        return false;
    }
    let t_end = fits::t_total_myr(m0, z);
    age0 < t_end && age1 >= t_end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fits::StellarPhase;

    #[test]
    fn table_matches_fits_on_grid_points() {
        let t = EvolutionTable::standard(0.02);
        for &m in &[0.5, 1.0, 5.0, 20.0] {
            let age = 0.4 * fits::t_ms_myr(m, 0.02);
            let table = t.lookup(m, age);
            let exact = fits::evaluate(m, 0.02, age);
            let rel = (table.luminosity - exact.luminosity).abs() / exact.luminosity;
            assert!(rel < 0.35, "m={m}: table {} vs fit {}", table.luminosity, exact.luminosity);
            assert_eq!(table.phase, exact.phase);
        }
    }

    #[test]
    fn remnants_not_interpolated() {
        let t = EvolutionTable::standard(0.02);
        let p = t.lookup(30.0, 1e5);
        assert_eq!(p.phase, StellarPhase::BlackHole);
        assert_eq!(p.mass, 10.0);
    }

    #[test]
    fn lookup_clamps_out_of_range_mass() {
        let t = EvolutionTable::standard(0.02);
        let p = t.lookup(0.05, 1.0);
        assert!(p.luminosity >= 0.0 && p.radius > 0.0);
    }

    #[test]
    fn supernova_window_detection() {
        let m = 20.0;
        let z = 0.02;
        let t_end = fits::t_total_myr(m, z);
        assert!(supernova_between(m, z, t_end - 1.0, t_end + 1.0));
        assert!(!supernova_between(m, z, 0.0, t_end - 1.0));
        assert!(!supernova_between(5.0, z, 0.0, 1e5)); // no SN below 8 MSun
    }

    #[test]
    fn bracket_endpoints() {
        let grid = [1.0, 2.0, 4.0];
        assert_eq!(EvolutionTable::bracket(&grid, 0.5), (0, 0.0));
        assert_eq!(EvolutionTable::bracket(&grid, 8.0), (1, 1.0));
        let (i, t) = EvolutionTable::bracket(&grid, 3.0);
        assert_eq!(i, 1);
        assert!((t - 0.5).abs() < 1e-12);
    }
}
