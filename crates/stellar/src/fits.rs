//! Analytic evolution fits (simplified Hurley-Pols-Tout style).
//!
//! All quantities in solar units (MSun, RSun, LSun) and Myr. The fits are
//! deliberately coarse — the paper's experiments need the right *structure*
//! (lifetimes ordered by mass, giants brighter and bigger, massive stars
//! exploding) rather than percent-level stellar physics.

/// Evolutionary phase of a star.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StellarPhase {
    /// Core hydrogen burning.
    MainSequence,
    /// Post-MS expansion (Hertzsprung gap + red giant branch, merged).
    Giant,
    /// Core helium burning / AGB (merged late phase).
    Agb,
    /// Degenerate remnant: white dwarf.
    WhiteDwarf,
    /// Neutron star (formed in a supernova).
    NeutronStar,
    /// Black hole (formed in a supernova).
    BlackHole,
}

impl StellarPhase {
    /// Is this a remnant phase?
    pub fn is_remnant(self) -> bool {
        matches!(
            self,
            StellarPhase::WhiteDwarf | StellarPhase::NeutronStar | StellarPhase::BlackHole
        )
    }
}

/// A point on an evolution track.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrackPoint {
    /// Phase at this age.
    pub phase: StellarPhase,
    /// Current mass (MSun) after winds/ejecta.
    pub mass: f64,
    /// Radius (RSun).
    pub radius: f64,
    /// Luminosity (LSun).
    pub luminosity: f64,
}

/// Main-sequence lifetime in Myr for a star of `m` MSun at metallicity `z`
/// (z only mildly perturbs the lifetime, as in the real fits).
pub fn t_ms_myr(m: f64, z: f64) -> f64 {
    assert!(m > 0.0, "mass must be positive");
    // ~10 Gyr for the Sun, steeply shorter for massive stars, with a floor
    // (even the most massive stars live ~3 Myr).
    let base = 1.0e4 * m.powf(-2.5);
    let zfac = 1.0 + 0.3 * (z / 0.02).ln().clamp(-1.0, 1.0) * 0.1;
    (base * zfac).max(3.0)
}

/// Giant-branch duration: 10% of the MS lifetime.
pub fn t_giant_myr(m: f64, z: f64) -> f64 {
    0.10 * t_ms_myr(m, z)
}

/// AGB / core-He duration: 2% of the MS lifetime.
pub fn t_agb_myr(m: f64, z: f64) -> f64 {
    0.02 * t_ms_myr(m, z)
}

/// Total nuclear-burning lifetime.
pub fn t_total_myr(m: f64, z: f64) -> f64 {
    t_ms_myr(m, z) + t_giant_myr(m, z) + t_agb_myr(m, z)
}

/// Zero-age main-sequence luminosity (LSun).
pub fn l_zams(m: f64) -> f64 {
    if m < 0.43 {
        0.23 * m.powf(2.3)
    } else if m < 2.0 {
        m.powf(4.0)
    } else if m < 20.0 {
        1.4 * m.powf(3.5)
    } else {
        // linear regime for very massive stars
        32_000.0 * m / 20.0 * (m / 20.0).powf(1.5)
    }
}

/// Zero-age main-sequence radius (RSun).
pub fn r_zams(m: f64) -> f64 {
    if m < 1.0 {
        m.powf(0.9)
    } else {
        m.powf(0.6)
    }
}

/// Remnant phase and mass for an initial mass `m0`.
///
/// * m0 < 8    → white dwarf, Kalirai-like `0.4 + 0.08 m0`
/// * 8 ≤ m0 < 25 → neutron star, 1.4 MSun (supernova)
/// * m0 ≥ 25   → black hole, `m0/3` (supernova)
pub fn remnant_of(m0: f64) -> (StellarPhase, f64) {
    if m0 < 8.0 {
        (StellarPhase::WhiteDwarf, (0.4 + 0.08 * m0).min(1.38))
    } else if m0 < 25.0 {
        (StellarPhase::NeutronStar, 1.4)
    } else {
        (StellarPhase::BlackHole, m0 / 3.0)
    }
}

/// Does a star of initial mass `m0` end in a supernova?
pub fn explodes(m0: f64) -> bool {
    m0 >= 8.0
}

/// Evaluate the full track at `age_myr` for initial mass `m0` and
/// metallicity `z`.
pub fn evaluate(m0: f64, z: f64, age_myr: f64) -> TrackPoint {
    assert!(m0 > 0.0 && age_myr >= 0.0);
    let tms = t_ms_myr(m0, z);
    let tg = t_giant_myr(m0, z);
    let tagb = t_agb_myr(m0, z);
    if age_myr < tms {
        // Main sequence: slow brightening (~ factor 2 over the MS).
        let f = age_myr / tms;
        TrackPoint {
            phase: StellarPhase::MainSequence,
            mass: m0,
            radius: r_zams(m0) * (1.0 + 0.5 * f),
            luminosity: l_zams(m0) * (1.0 + f),
        }
    } else if age_myr < tms + tg {
        // Giant branch: radius and luminosity climb steeply; winds shed up
        // to 10% of the envelope across the phase.
        let f = (age_myr - tms) / tg;
        let wind = 1.0 - 0.10 * f * envelope_fraction(m0);
        TrackPoint {
            phase: StellarPhase::Giant,
            mass: m0 * wind,
            radius: r_zams(m0) * (1.0 + 99.0 * f),
            luminosity: l_zams(m0) * (2.0 + 98.0 * f),
        }
    } else if age_myr < tms + tg + tagb {
        // AGB / core helium burning: heavy winds (another 15% of envelope).
        let f = (age_myr - tms - tg) / tagb;
        let wind = (1.0 - 0.10 * envelope_fraction(m0)) - 0.15 * f * envelope_fraction(m0);
        TrackPoint {
            phase: StellarPhase::Agb,
            mass: m0 * wind,
            radius: r_zams(m0) * 100.0 * (1.0 + f),
            luminosity: l_zams(m0) * 100.0 * (1.0 + 2.0 * f),
        }
    } else {
        let (phase, mass) = remnant_of(m0);
        let (radius, luminosity) = match phase {
            StellarPhase::WhiteDwarf => (0.01, 1e-3),
            StellarPhase::NeutronStar => (1.4e-5, 1e-5),
            StellarPhase::BlackHole => (4.24e-6 * mass, 0.0),
            _ => unreachable!(),
        };
        TrackPoint { phase, mass, radius, luminosity }
    }
}

/// Fraction of the star that is sheddable envelope (massive stars lose
/// proportionally more).
fn envelope_fraction(m0: f64) -> f64 {
    (0.3 + 0.02 * m0).min(0.8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sun_lives_ten_gyr() {
        let t = t_ms_myr(1.0, 0.02);
        assert!((t - 1.0e4).abs() / 1.0e4 < 0.1, "t_MS(sun) = {t} Myr");
    }

    #[test]
    fn lifetimes_decrease_with_mass() {
        let masses = [0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 60.0];
        for w in masses.windows(2) {
            assert!(
                t_ms_myr(w[0], 0.02) >= t_ms_myr(w[1], 0.02),
                "t_MS({}) < t_MS({})",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn massive_star_lifetime_has_floor() {
        assert!(t_ms_myr(100.0, 0.02) >= 3.0);
    }

    #[test]
    fn giants_are_bigger_and_brighter() {
        let m = 5.0;
        let z = 0.02;
        let on_ms = evaluate(m, z, 0.5 * t_ms_myr(m, z));
        let giant = evaluate(m, z, t_ms_myr(m, z) + 0.5 * t_giant_myr(m, z));
        assert_eq!(giant.phase, StellarPhase::Giant);
        assert!(giant.radius > 10.0 * on_ms.radius);
        assert!(giant.luminosity > 10.0 * on_ms.luminosity);
        assert!(giant.mass < m, "wind mass loss");
    }

    #[test]
    fn remnant_fates_by_mass() {
        assert_eq!(remnant_of(1.0).0, StellarPhase::WhiteDwarf);
        assert_eq!(remnant_of(10.0).0, StellarPhase::NeutronStar);
        assert_eq!(remnant_of(40.0).0, StellarPhase::BlackHole);
        assert!(explodes(9.0) && !explodes(7.0));
    }

    #[test]
    fn remnant_masses_are_smaller_than_initial() {
        for m0 in [0.8, 3.0, 8.0, 20.0, 30.0, 60.0] {
            let (_, mr) = remnant_of(m0);
            assert!(mr < m0, "remnant of {m0} has mass {mr}");
        }
    }

    #[test]
    fn track_mass_is_monotone_nonincreasing() {
        let m0 = 12.0;
        let z = 0.02;
        let total = t_total_myr(m0, z);
        let mut last = f64::INFINITY;
        for i in 0..200 {
            let age = total * 1.02 * i as f64 / 199.0;
            let p = evaluate(m0, z, age);
            assert!(p.mass <= last + 1e-9, "mass grew at age {age}");
            last = p.mass;
        }
    }

    #[test]
    fn luminosity_positive_until_black_hole() {
        let p = evaluate(1.0, 0.02, 0.0);
        assert!(p.luminosity > 0.0);
        let bh = evaluate(40.0, 0.02, 1e5);
        assert_eq!(bh.phase, StellarPhase::BlackHole);
        assert_eq!(bh.luminosity, 0.0);
    }
}
