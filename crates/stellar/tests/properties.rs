//! Property tests: stellar evolution invariants over the full fit range.

use jc_stellar::fits;
use jc_stellar::{EvolutionTable, SseModel};
use proptest::prelude::*;

proptest! {
    /// Mass never increases along any track.
    #[test]
    fn mass_monotone(m0 in 0.3f64..60.0, z in 0.004f64..0.03) {
        let total = fits::t_total_myr(m0, z);
        let mut last = f64::INFINITY;
        for i in 0..64 {
            let age = total * 1.2 * i as f64 / 63.0;
            let p = fits::evaluate(m0, z, age);
            prop_assert!(p.mass <= last + 1e-9);
            last = p.mass;
        }
    }

    /// Radius and luminosity stay positive and finite pre-collapse.
    #[test]
    fn track_fields_sane(m0 in 0.3f64..60.0, frac in 0.0f64..0.99) {
        let age = frac * fits::t_total_myr(m0, 0.02);
        let p = fits::evaluate(m0, 0.02, age);
        prop_assert!(p.radius > 0.0 && p.radius.is_finite());
        prop_assert!(p.luminosity >= 0.0 && p.luminosity.is_finite());
    }

    /// Table lookups agree with the analytic fit to interpolation error.
    #[test]
    fn table_tracks_fit(m0 in 0.5f64..50.0, frac in 0.05f64..0.9) {
        let table = EvolutionTable::standard(0.02);
        let age = frac * fits::t_total_myr(m0, 0.02);
        let a = table.lookup(m0, age);
        let b = fits::evaluate(m0, 0.02, age);
        // interpolation across phase boundaries is coarse; require the
        // same phase and same order of magnitude
        if a.phase == b.phase && b.luminosity > 0.0 {
            let ratio = a.luminosity / b.luminosity;
            prop_assert!(ratio > 0.2 && ratio < 5.0, "L ratio {ratio}");
        }
    }

    /// A population never gains mass and each massive star explodes at
    /// most once, whatever the evolve schedule.
    #[test]
    fn population_invariants(
        masses in proptest::collection::vec(0.3f64..40.0, 1..20),
        steps in proptest::collection::vec(0.1f64..50.0, 1..12),
    ) {
        let n = masses.len();
        let mut model = SseModel::new(masses, 0.02);
        let mut t = 0.0;
        let mut total_sn = 0usize;
        let mut last_mass = model.total_mass();
        for dt in steps {
            t += dt;
            let events = model.evolve_to(t);
            total_sn += events
                .iter()
                .filter(|e| matches!(e, jc_stellar::StellarEvent::Supernova { .. }))
                .count();
            let now = model.total_mass();
            prop_assert!(now <= last_mass + 1e-9);
            last_mass = now;
        }
        prop_assert!(total_sn <= n);
    }
}
