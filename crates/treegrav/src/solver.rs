//! The Barnes–Hut walk and the two kernel personalities (Octgrav / Fi).

use crate::octree::Octree;
use crate::FLOPS_PER_INTERACTION;
use jc_compute::par;
use jc_compute::soa::{reduce_lanes, LANES};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// A tree-gravity solver: builds an octree over the sources, then walks it
/// for each target with the offset-aware (Salmon–Warren) multipole
/// acceptance criterion: a cell of size `s` whose center of mass sits a
/// distance `delta` from its geometric center is accepted when
/// `distance > s / theta + delta`.
pub struct TreeGravity {
    /// Opening angle.
    pub theta: f64,
    /// Softening squared.
    pub eps2: f64,
    /// Worker-thread cap for [`TreeGravity::accelerations_into`]: 0 =
    /// auto (one per core, or the `JC_THREADS` override), 1 = strictly
    /// sequential (the steady-state walk then performs zero heap
    /// allocations).
    pub max_threads: usize,
    /// Select the SIMD-friendly SoA walk: the traversal runs over a
    /// compact cache-packed mirror of the octree (`WalkTree`, rebuilt
    /// per [`TreeGravity::rebuild`]), stages every accepted node's
    /// `[dx, dy, dz, mass]` row for a *block* of targets at a time in a
    /// per-worker interaction list, and evaluates the monopoles with
    /// the widest available instruction set (AVX-512 → AVX2 → portable
    /// [`LANES`]-wide lanes, all op-for-op bitwise identical) under the
    /// fixed [`reduce_lanes`] reduction order. Acceptance decisions are
    /// identical to the scalar walk (same interaction counts); results
    /// are bitwise stable from run to run (any worker count) but equal
    /// to the scalar walk only to rounding — the scalar walk stays the
    /// bitwise-pinned reference.
    pub simd: bool,
    interactions: AtomicU64,
    /// Reused octree arena (rebuilt in place every call).
    tree: Octree,
    /// Per-node squared opening radius, precomputed once per
    /// [`TreeGravity::rebuild`] (see [`precompute_open2`]): the walk's
    /// acceptance test collapses to one load and one compare instead of
    /// re-deriving `(size/θ + δ)²` — a `sqrt` and a `div` per visited
    /// node — for every one of the N targets.
    open2: Vec<f64>,
    /// Compact traversal mirror for the SIMD walk (rebuilt per
    /// [`TreeGravity::rebuild`]; see [`WalkTree`]).
    walk: WalkTree,
    /// Reused per-worker traversal state (stack + interaction list).
    walkers: Vec<WalkScratch>,
}

/// Minimum targets per worker thread before fanning out.
const PAR_GRAIN: usize = 64;

/// Targets staged per interaction-list batch on the SIMD walk: the
/// traversal fills one shared list for a block of targets (per-target
/// extents recorded on the stack), then the evaluator sweeps the block
/// — the list stays hot in cache and the per-call dispatch/reduction
/// overhead is amortized across the block.
const TARGET_BLOCK: usize = 8;

/// Per-worker traversal state: the explicit walk stack, plus the SoA
/// interaction list the SIMD walk stages accepted nodes into (empty and
/// untouched on the scalar path).
#[derive(Default)]
struct WalkScratch {
    stack: Vec<u32>,
    /// Accepted-node interaction list, one `[dx, dy, dz, mass]` row per
    /// node (the separation vector is already computed by the acceptance
    /// test) — a single push per acceptance; the evaluator transposes
    /// rows to lanes in registers. Holds a whole [`TARGET_BLOCK`] of
    /// targets' rows per batch (contiguous per-target extents). Staged
    /// rows always have `|dx|² + ε² > 0`: the traversal filters the
    /// zero-distance zero-softening case before staging.
    list: Vec<[f64; 4]>,
}

/// One node of the [`WalkTree`]: everything the SIMD traversal touches
/// per visited node — acceptance inputs (`com`, `open2`), the staged
/// payload (`mass`) and the live-children extent — packed into 48
/// bytes, versus two-plus cache lines for the full
/// [`crate::octree::Node`] plus a separate `open2` load. At the N where
/// the node arena outgrows L2 this halves the traversal's miss
/// footprint.
#[derive(Clone, Default)]
struct WalkCell {
    /// Center of mass of the cell.
    com: [f64; 3],
    /// Total mass of the cell.
    mass: f64,
    /// Squared opening radius (`-1.0` leaf sentinel accepts always).
    open2: f64,
    /// First live child in [`WalkTree::children`].
    child_start: u32,
    /// Number of live children.
    child_count: u32,
}

/// Compact mirror of the octree for the SIMD walk, rebuilt (in place,
/// allocation-free once warm) by [`TreeGravity::rebuild`]. Cells keep
/// the octree's arena indices; empty and massless subtrees are pruned
/// from the children lists at build time — exactly the nodes the scalar
/// walk skips at run time, so acceptance decisions and interaction
/// counts are identical by construction.
#[derive(Default)]
struct WalkTree {
    cells: Vec<WalkCell>,
    /// Flattened live-children lists, indexed by
    /// [`WalkCell::child_start`] / [`WalkCell::child_count`]. Children
    /// keep the octant order the scalar walk pushes them in, so the
    /// traversal (and the staged row order) matches it node for node.
    children: Vec<u32>,
    /// Does the root itself pass the scalar walk's `count > 0 &&
    /// mass != 0` liveness check? (`false` also for an empty tree.)
    root_live: bool,
}

impl WalkTree {
    /// Rebuild the mirror from `tree` and its precomputed `open2` radii.
    fn build(&mut self, tree: &Octree, open2: &[f64]) {
        let nodes = tree.nodes();
        self.cells.clear();
        self.children.clear();
        self.root_live = nodes.first().is_some_and(|r| r.count > 0 && r.mass != 0.0);
        for (i, n) in nodes.iter().enumerate() {
            let start = self.children.len() as u32;
            // Leaves (open2 sentinel) never descend; internal nodes
            // keep only children the scalar walk would not skip.
            if open2[i] >= 0.0 {
                for &c in &n.children {
                    if c != 0 {
                        let ch = &nodes[c as usize];
                        if ch.count > 0 && ch.mass != 0.0 {
                            self.children.push(c);
                        }
                    }
                }
            }
            self.cells.push(WalkCell {
                com: n.com,
                mass: n.mass,
                open2: open2[i],
                child_start: start,
                child_count: self.children.len() as u32 - start,
            });
        }
    }
}

/// Hint the cache that cell `i` is about to be visited (children are
/// prefetched as they are pushed on the walk stack, hiding the node
/// fetch latency behind the remaining work at this level). A no-op off
/// x86_64; never affects results.
#[inline(always)]
fn prefetch_cell(cells: &[WalkCell], i: u32) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a pure cache hint with no memory or
    // register effects; the pointer is in bounds by construction
    // (`i` indexes `cells`) and SSE is part of the x86_64 baseline.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(cells.as_ptr().add(i as usize) as *const i8, _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (cells, i);
    }
}

impl TreeGravity {
    /// New solver with opening angle `theta` and softening `eps`.
    pub fn new(theta: f64, eps: f64) -> TreeGravity {
        assert!(theta > 0.0 && theta < 2.0);
        TreeGravity {
            theta,
            eps2: eps * eps,
            max_threads: 0,
            simd: false,
            interactions: AtomicU64::new(0),
            tree: Octree::new(),
            open2: Vec::new(),
            walk: WalkTree::default(),
            walkers: Vec::new(),
        }
    }

    /// Accelerations on `targets` due to `(s_pos, s_mass)`. G = 1.
    /// Allocating convenience path; hot callers use
    /// [`TreeGravity::accelerations_into`].
    pub fn accelerations(
        &self,
        targets: &[[f64; 3]],
        s_pos: &[[f64; 3]],
        s_mass: &[f64],
    ) -> Vec<[f64; 3]> {
        if s_pos.is_empty() || targets.is_empty() {
            return vec![[0.0; 3]; targets.len()];
        }
        let tree = Octree::build(s_pos, s_mass);
        let mut open2 = Vec::new();
        precompute_open2(&tree, self.theta, &mut open2);
        let open2 = &open2;
        let count = AtomicU64::new(0);
        let out: Vec<[f64; 3]> = targets
            .par_iter()
            .map(|t| {
                let mut stack: Vec<u32> = Vec::with_capacity(64);
                let mut acc = [0.0f64; 3];
                let n = walk_into(&tree, open2, self.eps2, t, &mut acc, &mut stack);
                count.fetch_add(n, Ordering::Relaxed);
                acc
            })
            .collect();
        self.interactions.store(count.into_inner(), Ordering::Relaxed);
        out
    }

    /// Accelerations on `targets` written into `out` (cleared and
    /// resized), reusing the solver's octree arena and traversal state —
    /// the zero-allocation steady-state path. Results are bitwise
    /// identical to [`TreeGravity::accelerations`] (scalar walk; the
    /// [`TreeGravity::simd`] walk carries its own rounding contract).
    /// Equivalent to [`TreeGravity::rebuild`] followed by
    /// [`TreeGravity::walk_targets`].
    // jc-lint: no-alloc
    pub fn accelerations_into(
        &mut self,
        targets: &[[f64; 3]],
        s_pos: &[[f64; 3]],
        s_mass: &[f64],
        out: &mut Vec<[f64; 3]>,
    ) {
        self.rebuild(s_pos, s_mass);
        self.walk_targets(targets, out);
    }

    /// Rebuild the octree over the sources, reusing the node arena —
    /// the build half of [`TreeGravity::accelerations_into`], exposed so
    /// build and walk cost can be measured (and amortized) separately.
    pub fn rebuild(&mut self, s_pos: &[[f64; 3]], s_mass: &[f64]) {
        self.tree.build_into(s_pos, s_mass);
        precompute_open2(&self.tree, self.theta, &mut self.open2);
        // Always mirrored (one linear pass over the arena, in place):
        // `simd` may be toggled between rebuild and walk.
        self.walk.build(&self.tree, &self.open2);
    }

    /// Walk every target against the tree from the last
    /// [`TreeGravity::rebuild`], writing into `out` (cleared and
    /// resized) — the walk half of [`TreeGravity::accelerations_into`].
    // jc-lint: no-alloc
    pub fn walk_targets(&mut self, targets: &[[f64; 3]], out: &mut Vec<[f64; 3]>) {
        out.clear();
        out.resize(targets.len(), [0.0; 3]);
        if self.tree.is_empty() || targets.is_empty() {
            self.interactions.store(0, Ordering::Relaxed);
            return;
        }
        let n = targets.len();
        let threads = par::threads_for(n, self.max_threads, PAR_GRAIN);
        self.walkers.resize_with(threads, WalkScratch::default);
        let (tree, open2, eps2, simd) = (&self.tree, &self.open2[..], self.eps2, self.simd);
        let walk = &self.walk;
        let total = par::chunked(
            threads,
            (targets, out.as_mut_slice()),
            &mut self.walkers,
            0u64,
            |_, (tc, oc): (&[[f64; 3]], &mut [[f64; 3]]), walker| {
                let mut inter = 0u64;
                if simd {
                    for (tb, ob) in tc.chunks(TARGET_BLOCK).zip(oc.chunks_mut(TARGET_BLOCK)) {
                        inter += walk_block_simd(walk, eps2, tb, ob, walker);
                    }
                } else {
                    for (t, a) in tc.iter().zip(oc.iter_mut()) {
                        inter += walk_into(tree, open2, eps2, t, a, &mut walker.stack);
                    }
                }
                inter
            },
            |a, b| a + b,
        );
        self.interactions.store(total, Ordering::Relaxed);
    }

    /// Particle–node interactions performed by the last
    /// [`TreeGravity::accelerations`] / [`TreeGravity::accelerations_into`]
    /// call.
    pub fn last_interactions(&self) -> u64 {
        self.interactions.load(Ordering::Relaxed)
    }

    /// Modeled flop count of the last call.
    pub fn last_flops(&self) -> f64 {
        self.last_interactions() as f64 * FLOPS_PER_INTERACTION
    }
}

/// Precompute every node's squared opening radius for the offset-aware
/// acceptance criterion (Salmon & Warren): the plain `size/d < theta`
/// test mis-weights cells whose center of mass sits far from the
/// geometric center; requiring `d > size/theta + |com - center|` bounds
/// the worst-case monopole error instead of only the typical one.
///
/// Leaves get a sentinel of `-1.0` so `r² > open2` always accepts them.
/// Computing `(size/θ + δ)²` here — once per build, instead of once per
/// *visited node per target* — removes a `sqrt` and a `div` from the
/// walk's inner loop while producing the exact same comparison values,
/// so acceptance decisions (and the walk results) are bitwise unchanged.
fn precompute_open2(tree: &Octree, theta: f64, open2: &mut Vec<f64>) {
    open2.clear();
    open2.extend(tree.nodes().iter().map(|node| {
        let is_leaf = node.particle != u32::MAX || node.children.iter().all(|&c| c == 0);
        if is_leaf {
            return -1.0;
        }
        let size = 2.0 * node.half_width;
        let delta2 = {
            let ox = [
                node.com[0] - node.center[0],
                node.com[1] - node.center[1],
                node.com[2] - node.center[2],
            ];
            ox[0] * ox[0] + ox[1] * ox[1] + ox[2] * ox[2]
        };
        let open_dist = size / theta + delta2.sqrt();
        open_dist * open_dist
    }));
}

/// One Barnes–Hut walk; `acc` must start zeroed, `stack` is reused across
/// calls (no allocation once warm), `open2` comes from
/// [`precompute_open2`] on the same tree. Returns the interaction count.
fn walk_into(
    tree: &Octree,
    open2: &[f64],
    eps2: f64,
    t: &[f64; 3],
    acc: &mut [f64; 3],
    stack: &mut Vec<u32>,
) -> u64 {
    let nodes = tree.nodes();
    let mut n_inter = 0u64;
    stack.clear();
    stack.push(0);
    while let Some(ni) = stack.pop() {
        let node = &nodes[ni as usize];
        if node.count == 0 || node.mass == 0.0 {
            continue;
        }
        let dx = [node.com[0] - t[0], node.com[1] - t[1], node.com[2] - t[2]];
        let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
        if r2 > open2[ni as usize] {
            if r2 == 0.0 && eps2 == 0.0 {
                continue; // the target sits exactly on the node com
            }
            let r2s = r2 + eps2;
            let inv_r3 = 1.0 / (r2s * r2s.sqrt());
            for k in 0..3 {
                acc[k] += node.mass * dx[k] * inv_r3;
            }
            n_inter += 1;
        } else {
            for &c in &node.children {
                if c != 0 {
                    stack.push(c);
                }
            }
        }
    }
    n_inter
}

/// The Barnes–Hut walk for one block of up to [`TARGET_BLOCK`] targets
/// on the SoA path ([`TreeGravity::simd`]): each target's traversal runs
/// over the compact [`WalkTree`] mirror (identical acceptance decisions
/// to [`walk_into`], hence identical interaction counts — dead subtrees
/// were pruned at build time instead of skipped per pop), staging
/// accepted `[dx, dy, dz, mass]` rows into one shared per-worker list
/// with per-target extents; children are cache-prefetched as they are
/// pushed. The monopole kernel then sweeps the still-hot list once per
/// target under the fixed [`reduce_lanes`] reduction. `out` rows are
/// fully overwritten. Returns the block's interaction count.
fn walk_block_simd(
    wt: &WalkTree,
    eps2: f64,
    targets: &[[f64; 3]],
    out: &mut [[f64; 3]],
    w: &mut WalkScratch,
) -> u64 {
    debug_assert!(targets.len() <= TARGET_BLOCK && targets.len() == out.len());
    if !wt.root_live {
        out.fill([0.0; 3]);
        return 0;
    }
    let cells = wt.cells.as_slice();
    let kids = wt.children.as_slice();
    let mut offs = [0u32; TARGET_BLOCK + 1];
    w.list.clear();
    for (k, t) in targets.iter().enumerate() {
        w.stack.clear();
        w.stack.push(0);
        while let Some(ni) = w.stack.pop() {
            let cell = &cells[ni as usize];
            let dx = [cell.com[0] - t[0], cell.com[1] - t[1], cell.com[2] - t[2]];
            let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
            if r2 > cell.open2 {
                if r2 == 0.0 && eps2 == 0.0 {
                    continue; // the target sits exactly on the node com
                }
                w.list.push([dx[0], dx[1], dx[2], cell.mass]);
            } else {
                let s = cell.child_start as usize;
                for &c in &kids[s..s + cell.child_count as usize] {
                    prefetch_cell(cells, c);
                    w.stack.push(c);
                }
            }
        }
        offs[k + 1] = w.list.len() as u32;
    }
    for (k, acc) in out.iter_mut().enumerate() {
        let rows = &w.list[offs[k] as usize..offs[k + 1] as usize];
        eval_interaction_list(rows, eps2, acc);
    }
    w.list.len() as u64
}

/// Evaluate the staged monopole interactions for one target, dispatched
/// once per list to the widest available instruction set (see
/// [`walk_block_simd`]; the AVX-512 and AVX2 clones and the portable
/// body execute the identical IEEE operation sequence, so results are
/// machine-independent).
fn eval_interaction_list(list: &[[f64; 4]], eps2: f64, acc: &mut [f64; 3]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx2")
        {
            // SAFETY: the avx512 clone is only reached when the CPU
            // reports both features at runtime.
            return unsafe { eval_interaction_list_avx512(list, eps2, acc) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 clone is only reached when the CPU reports
            // the feature at runtime.
            return unsafe { eval_interaction_list_avx2(list, eps2, acc) };
        }
    }
    eval_interaction_list_body(list, eps2, acc);
}

/// Transpose four consecutive `[dx, dy, dz, m]` rows starting at `o`
/// into lane vectors. Shared by the AVX2 and AVX-512 evaluators.
// SAFETY: `#[target_feature(enable = "avx2")]` makes this fn unsafe to
// call; callers are themselves feature-gated clones and must pass
// `o + 3 < list.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn transpose_rows4(
    list: &[[f64; 4]],
    o: usize,
) -> (
    std::arch::x86_64::__m256d,
    std::arch::x86_64::__m256d,
    std::arch::x86_64::__m256d,
    std::arch::x86_64::__m256d,
) {
    use std::arch::x86_64::*;
    // SAFETY: the unaligned loads read whole `[f64; 4]` rows at indices
    // `o .. o + 3`, in bounds per the caller contract; `loadu` has no
    // alignment requirement.
    unsafe {
        let r0 = _mm256_loadu_pd(list[o].as_ptr());
        let r1 = _mm256_loadu_pd(list[o + 1].as_ptr());
        let r2_ = _mm256_loadu_pd(list[o + 2].as_ptr());
        let r3 = _mm256_loadu_pd(list[o + 3].as_ptr());
        let t0 = _mm256_unpacklo_pd(r0, r1);
        let t1 = _mm256_unpackhi_pd(r0, r1);
        let t2 = _mm256_unpacklo_pd(r2_, r3);
        let t3 = _mm256_unpackhi_pd(r2_, r3);
        let dx = _mm256_permute2f128_pd::<0x20>(t0, t2);
        let dy = _mm256_permute2f128_pd::<0x20>(t1, t3);
        let dz = _mm256_permute2f128_pd::<0x31>(t0, t2);
        let m = _mm256_permute2f128_pd::<0x31>(t1, t3);
        (dx, dy, dz, m)
    }
}

/// AVX-512 implementation of [`eval_interaction_list_body`]: eight
/// staged rows per iteration — two 4×4 in-register transposes widened to
/// one zmm vector — with the monopole arithmetic evaluated 8-wide
/// elementwise. Accumulation stays [`LANES`]-wide and *sequential* (low
/// half, then high half): elementwise IEEE ops give the same result at
/// any vector width, and the two 4-wide adds reproduce the portable
/// body's exact batch order, so all three dispatch tiers stay bitwise
/// identical.
// SAFETY: `#[target_feature(enable = "avx512f,avx2")]` makes this fn
// unsafe to call; the only call site is gated on runtime detection of
// both features, so the instructions are never executed on a CPU
// without them.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx2")]
unsafe fn eval_interaction_list_avx512(list: &[[f64; 4]], eps2: f64, acc: &mut [f64; 3]) {
    use std::arch::x86_64::*;
    let n = list.len();
    let groups = n / (2 * LANES);
    // SAFETY: row loads go through `transpose_rows4` at offsets
    // `g * 2 * LANES (+ LANES)` with `g < n / (2 * LANES)`, so every
    // row index is `< n`; the `storeu` spills target local stack
    // arrays. The AVX-512/AVX2 intrinsics are available per the
    // `#[target_feature]` contract discharged at the detection-gated
    // call site.
    unsafe {
        let eps2v8 = _mm512_set1_pd(eps2);
        let ones8 = _mm512_set1_pd(1.0);
        let mut axv = _mm256_setzero_pd();
        let mut ayv = _mm256_setzero_pd();
        let mut azv = _mm256_setzero_pd();
        for g in 0..groups {
            let o = g * 2 * LANES;
            let (dx_lo, dy_lo, dz_lo, m_lo) = transpose_rows4(list, o);
            let (dx_hi, dy_hi, dz_hi, m_hi) = transpose_rows4(list, o + LANES);
            let dx = _mm512_insertf64x4::<1>(_mm512_castpd256_pd512(dx_lo), dx_hi);
            let dy = _mm512_insertf64x4::<1>(_mm512_castpd256_pd512(dy_lo), dy_hi);
            let dz = _mm512_insertf64x4::<1>(_mm512_castpd256_pd512(dz_lo), dz_hi);
            let m = _mm512_insertf64x4::<1>(_mm512_castpd256_pd512(m_lo), m_hi);
            let r2s = _mm512_add_pd(
                _mm512_add_pd(
                    _mm512_add_pd(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy)),
                    _mm512_mul_pd(dz, dz),
                ),
                eps2v8,
            );
            let inv_r3 = _mm512_div_pd(ones8, _mm512_mul_pd(r2s, _mm512_sqrt_pd(r2s)));
            let mir3 = _mm512_mul_pd(m, inv_r3);
            let px = _mm512_mul_pd(mir3, dx);
            let py = _mm512_mul_pd(mir3, dy);
            let pz = _mm512_mul_pd(mir3, dz);
            // Two sequential 4-wide adds — the portable batch order.
            axv = _mm256_add_pd(axv, _mm512_castpd512_pd256(px));
            axv = _mm256_add_pd(axv, _mm512_extractf64x4_pd::<1>(px));
            ayv = _mm256_add_pd(ayv, _mm512_castpd512_pd256(py));
            ayv = _mm256_add_pd(ayv, _mm512_extractf64x4_pd::<1>(py));
            azv = _mm256_add_pd(azv, _mm512_castpd512_pd256(pz));
            azv = _mm256_add_pd(azv, _mm512_extractf64x4_pd::<1>(pz));
        }
        let mut o = groups * 2 * LANES;
        if n - o >= LANES {
            // One leftover full batch: evaluate it 4-wide (AVX2 form),
            // keeping the portable body's per-batch op sequence.
            let eps2v = _mm256_set1_pd(eps2);
            let ones = _mm256_set1_pd(1.0);
            let (dx, dy, dz, m) = transpose_rows4(list, o);
            let r2s = _mm256_add_pd(
                _mm256_add_pd(
                    _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
                    _mm256_mul_pd(dz, dz),
                ),
                eps2v,
            );
            let inv_r3 = _mm256_div_pd(ones, _mm256_mul_pd(r2s, _mm256_sqrt_pd(r2s)));
            let mir3 = _mm256_mul_pd(m, inv_r3);
            axv = _mm256_add_pd(axv, _mm256_mul_pd(mir3, dx));
            ayv = _mm256_add_pd(ayv, _mm256_mul_pd(mir3, dy));
            azv = _mm256_add_pd(azv, _mm256_mul_pd(mir3, dz));
            o += LANES;
        }
        let (mut axl, mut ayl, mut azl) = ([0.0f64; LANES], [0.0f64; LANES], [0.0f64; LANES]);
        _mm256_storeu_pd(axl.as_mut_ptr(), axv);
        _mm256_storeu_pd(ayl.as_mut_ptr(), ayv);
        _mm256_storeu_pd(azl.as_mut_ptr(), azv);
        for (l, row) in list[o..].iter().enumerate() {
            let [dx, dy, dz, m] = *row;
            let r2s = dx * dx + dy * dy + dz * dz + eps2;
            let inv_r3 = 1.0 / (r2s * r2s.sqrt());
            let mir3 = m * inv_r3;
            axl[l] += mir3 * dx;
            ayl[l] += mir3 * dy;
            azl[l] += mir3 * dz;
        }
        *acc = [reduce_lanes(axl), reduce_lanes(ayl), reduce_lanes(azl)];
    }
}

/// AVX2 implementation of [`eval_interaction_list_body`]: four
/// `[dx, dy, dz, m]` rows are loaded and transposed to lanes in
/// registers, then evaluated with 4-wide packed arithmetic — sequential
/// loads, no gathers, no masks (staged rows are pre-filtered, see
/// [`WalkScratch::list`]).
// SAFETY: `#[target_feature(enable = "avx2")]` makes this fn unsafe to
// call; the only call site is gated on `is_x86_feature_detected!("avx2")`,
// so the AVX2 instructions are never executed on a CPU without them.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn eval_interaction_list_avx2(list: &[[f64; 4]], eps2: f64, acc: &mut [f64; 3]) {
    use std::arch::x86_64::*;
    let n = list.len();
    let batches = n / LANES;
    // SAFETY: the unaligned loads read whole `[f64; 4]` rows at indices
    // `o .. o + 3` with `o = b * LANES` and `b < n / LANES`, so every
    // row index is `< n`; `loadu` has no alignment requirement and the
    // `storeu` spills target local stack arrays. The AVX2 intrinsics
    // are available per the `#[target_feature]` contract discharged at
    // the detection-gated call site.
    unsafe {
        let eps2v = _mm256_set1_pd(eps2);
        let ones = _mm256_set1_pd(1.0);
        let mut axv = _mm256_setzero_pd();
        let mut ayv = _mm256_setzero_pd();
        let mut azv = _mm256_setzero_pd();
        for b in 0..batches {
            let o = b * LANES;
            // 4x4 transpose: rows [dx dy dz m] -> lane vectors
            let r0 = _mm256_loadu_pd(list[o].as_ptr());
            let r1 = _mm256_loadu_pd(list[o + 1].as_ptr());
            let r2_ = _mm256_loadu_pd(list[o + 2].as_ptr());
            let r3 = _mm256_loadu_pd(list[o + 3].as_ptr());
            let t0 = _mm256_unpacklo_pd(r0, r1);
            let t1 = _mm256_unpackhi_pd(r0, r1);
            let t2 = _mm256_unpacklo_pd(r2_, r3);
            let t3 = _mm256_unpackhi_pd(r2_, r3);
            let dx = _mm256_permute2f128_pd::<0x20>(t0, t2);
            let dy = _mm256_permute2f128_pd::<0x20>(t1, t3);
            let dz = _mm256_permute2f128_pd::<0x31>(t0, t2);
            let m = _mm256_permute2f128_pd::<0x31>(t1, t3);
            let r2s = _mm256_add_pd(
                _mm256_add_pd(
                    _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
                    _mm256_mul_pd(dz, dz),
                ),
                eps2v,
            );
            let inv_r3 = _mm256_div_pd(ones, _mm256_mul_pd(r2s, _mm256_sqrt_pd(r2s)));
            let mir3 = _mm256_mul_pd(m, inv_r3);
            axv = _mm256_add_pd(axv, _mm256_mul_pd(mir3, dx));
            ayv = _mm256_add_pd(ayv, _mm256_mul_pd(mir3, dy));
            azv = _mm256_add_pd(azv, _mm256_mul_pd(mir3, dz));
        }
        let (mut axl, mut ayl, mut azl) = ([0.0f64; LANES], [0.0f64; LANES], [0.0f64; LANES]);
        _mm256_storeu_pd(axl.as_mut_ptr(), axv);
        _mm256_storeu_pd(ayl.as_mut_ptr(), ayv);
        _mm256_storeu_pd(azl.as_mut_ptr(), azv);
        let o = batches * LANES;
        for (l, row) in list[o..].iter().enumerate() {
            let [dx, dy, dz, m] = *row;
            let r2s = dx * dx + dy * dy + dz * dz + eps2;
            let inv_r3 = 1.0 / (r2s * r2s.sqrt());
            let mir3 = m * inv_r3;
            axl[l] += mir3 * dx;
            ayl[l] += mir3 * dy;
            azl[l] += mir3 * dz;
        }
        *acc = [reduce_lanes(axl), reduce_lanes(ayl), reduce_lanes(azl)];
    }
}

/// Portable [`LANES`]-wide monopole evaluation (the non-AVX2 fallback of
/// [`eval_interaction_list`]) — same operation sequence, narrower
/// hardware vectors.
#[inline(always)]
fn eval_interaction_list_body(list: &[[f64; 4]], eps2: f64, acc: &mut [f64; 3]) {
    let n = list.len();
    let batches = n / LANES;
    let (mut axl, mut ayl, mut azl) = ([0.0f64; LANES], [0.0f64; LANES], [0.0f64; LANES]);
    macro_rules! lane {
        ($l:expr, $row:expr) => {{
            let l = $l;
            let row = $row;
            let [dx, dy, dz, m] = row;
            let r2s = dx * dx + dy * dy + dz * dz + eps2;
            let inv_r3 = 1.0 / (r2s * r2s.sqrt());
            let mir3 = m * inv_r3;
            axl[l] += mir3 * dx;
            ayl[l] += mir3 * dy;
            azl[l] += mir3 * dz;
        }};
    }
    for b in 0..batches {
        let o = b * LANES;
        let batch: &[[f64; 4]; LANES] = list[o..o + LANES].try_into().unwrap();
        for (l, row) in batch.iter().enumerate() {
            lane!(l, *row);
        }
    }
    let o = batches * LANES;
    for (l, row) in list[o..].iter().enumerate() {
        lane!(l, *row);
    }
    *acc = [reduce_lanes(axl), reduce_lanes(ayl), reduce_lanes(azl)];
}

/// The Octgrav personality: GPU tree code with a wide opening angle.
pub struct Octgrav {
    /// The solver.
    pub solver: TreeGravity,
}

impl Octgrav {
    /// Octgrav defaults: θ = 0.75 (GPU codes run wide), ε = 0.01.
    pub fn new() -> Octgrav {
        Octgrav { solver: TreeGravity::new(0.75, 0.01) }
    }
}

impl Default for Octgrav {
    fn default() -> Self {
        Self::new()
    }
}

/// The Fi personality: CPU tree code with a tighter opening angle.
pub struct Fi {
    /// The solver.
    pub solver: TreeGravity,
}

impl Fi {
    /// Fi defaults: θ = 0.5, ε = 0.01.
    pub fn new() -> Fi {
        Fi { solver: TreeGravity::new(0.5, 0.01) }
    }
}

impl Default for Fi {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
        let mut x = seed.max(1);
        let mut rnd = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let pos: Vec<[f64; 3]> = (0..n).map(|_| [rnd(), rnd(), rnd()]).collect();
        let mass = vec![1.0 / n as f64; n];
        (pos, mass)
    }

    fn direct(
        targets: &[[f64; 3]],
        s_pos: &[[f64; 3]],
        s_mass: &[f64],
        eps2: f64,
    ) -> Vec<[f64; 3]> {
        targets
            .iter()
            .map(|t| {
                let mut a = [0.0; 3];
                for (p, m) in s_pos.iter().zip(s_mass) {
                    let dx = [p[0] - t[0], p[1] - t[1], p[2] - t[2]];
                    let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + eps2;
                    if r2 == 0.0 {
                        continue;
                    }
                    let inv_r3 = 1.0 / (r2 * r2.sqrt());
                    for k in 0..3 {
                        a[k] += m * dx[k] * inv_r3;
                    }
                }
                a
            })
            .collect()
    }

    fn rel_err(a: &[[f64; 3]], b: &[[f64; 3]]) -> f64 {
        let mut max = 0.0f64;
        for (x, y) in a.iter().zip(b) {
            let d = ((x[0] - y[0]).powi(2) + (x[1] - y[1]).powi(2) + (x[2] - y[2]).powi(2)).sqrt();
            let n = (y[0] * y[0] + y[1] * y[1] + y[2] * y[2]).sqrt().max(1e-12);
            max = max.max(d / n);
        }
        max
    }

    #[test]
    fn into_path_matches_allocating_path_bitwise() {
        let (pos, mass) = cloud(800, 17);
        let (tpos, _) = cloud(128, 4);
        let mut solver = TreeGravity::new(0.5, 0.01);
        let a = solver.accelerations(&tpos, &pos, &mass);
        let n_a = solver.last_interactions();
        let mut b = Vec::new();
        solver.accelerations_into(&tpos, &pos, &mass, &mut b);
        assert_eq!(a, b);
        assert_eq!(n_a, solver.last_interactions());
        // sequential mode agrees too, and reuses the arena across calls
        solver.max_threads = 1;
        let mut c = Vec::new();
        solver.accelerations_into(&tpos, &pos, &mass, &mut c);
        solver.accelerations_into(&tpos, &pos, &mass, &mut c);
        assert_eq!(a, c);
    }

    #[test]
    fn simd_walk_matches_scalar_within_tolerance() {
        let (pos, mass) = cloud(1500, 23);
        let (tpos, _) = cloud(257, 6); // odd count exercises tail lanes
        let mut scalar = TreeGravity::new(0.5, 0.01);
        let mut a = Vec::new();
        scalar.accelerations_into(&tpos, &pos, &mass, &mut a);
        let n_scalar = scalar.last_interactions();
        let mut simd = TreeGravity::new(0.5, 0.01);
        simd.simd = true;
        let mut b = Vec::new();
        simd.accelerations_into(&tpos, &pos, &mass, &mut b);
        // identical traversal: the acceptance decisions (and so the
        // interaction count) cannot depend on the evaluation order
        assert_eq!(n_scalar, simd.last_interactions());
        assert!(rel_err(&b, &a) < 1e-12, "simd walk error {}", rel_err(&b, &a));
        // bitwise stable across reruns and worker counts
        let mut c = Vec::new();
        simd.max_threads = 7;
        simd.accelerations_into(&tpos, &pos, &mass, &mut c);
        assert_eq!(b, c, "simd walk not run-to-run stable");
    }

    #[test]
    fn eval_dispatch_tiers_match_portable_body_bitwise() {
        // Every list length class: 8-row groups, a leftover 4-batch,
        // and 1–3 scalar tail lanes. The dispatched path (widest tier
        // the CPU offers) must be bitwise identical to the portable
        // body.
        let mut x = 42u64;
        let mut rnd = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 12, 15, 16, 23, 31, 64] {
            let list: Vec<[f64; 4]> =
                (0..n).map(|_| [rnd(), rnd(), rnd(), rnd().abs() + 0.1]).collect();
            let mut dispatched = [0.0f64; 3];
            let mut portable = [0.0f64; 3];
            eval_interaction_list(&list, 1e-4, &mut dispatched);
            eval_interaction_list_body(&list, 1e-4, &mut portable);
            assert_eq!(dispatched, portable, "tier divergence at n={n}");
        }
    }

    #[test]
    fn rebuild_walk_split_matches_combined() {
        let (pos, mass) = cloud(900, 31);
        let (tpos, _) = cloud(100, 2);
        let mut solver = TreeGravity::new(0.5, 0.01);
        let mut combined = Vec::new();
        solver.accelerations_into(&tpos, &pos, &mass, &mut combined);
        let mut split = Vec::new();
        solver.rebuild(&pos, &mass);
        solver.walk_targets(&tpos, &mut split);
        assert_eq!(combined, split);
        // walking twice against one build is the amortized pattern
        solver.walk_targets(&tpos, &mut split);
        assert_eq!(combined, split);
    }

    #[test]
    fn fi_is_accurate_to_percent_level() {
        let (pos, mass) = cloud(500, 3);
        let (tpos, _) = cloud(64, 9);
        let fi = Fi::new();
        let approx = fi.solver.accelerations(&tpos, &pos, &mass);
        let exact = direct(&tpos, &pos, &mass, fi.solver.eps2);
        let err = rel_err(&approx, &exact);
        assert!(err < 0.05, "Fi error {err}");
    }

    #[test]
    fn octgrav_is_coarser_but_cheaper_than_fi() {
        let (pos, mass) = cloud(2000, 5);
        let (tpos, _) = cloud(128, 8);
        let fi = Fi::new();
        let oct = Octgrav::new();
        let a_fi = fi.solver.accelerations(&tpos, &pos, &mass);
        let n_fi = fi.solver.last_interactions();
        let a_oct = oct.solver.accelerations(&tpos, &pos, &mass);
        let n_oct = oct.solver.last_interactions();
        assert!(n_oct < n_fi, "octgrav does fewer interactions: {n_oct} vs {n_fi}");
        let exact = direct(&tpos, &pos, &mass, fi.solver.eps2);
        assert!(rel_err(&a_oct, &exact) < 0.15, "octgrav still reasonable");
        assert!(rel_err(&a_fi, &exact) <= rel_err(&a_oct, &exact) + 0.01);
    }

    #[test]
    fn tree_beats_direct_asymptotically_in_interactions() {
        let (pos, mass) = cloud(4000, 1);
        let fi = Fi::new();
        let _ = fi.solver.accelerations(&pos, &pos, &mass);
        let inter = fi.solver.last_interactions();
        let direct_pairs = 4000u64 * 4000;
        assert!(inter * 4 < direct_pairs, "tree {inter} vs direct {direct_pairs} interactions");
    }

    #[test]
    fn empty_inputs() {
        let fi = Fi::new();
        assert!(fi.solver.accelerations(&[], &[], &[]).is_empty());
        let a = fi.solver.accelerations(&[[0.0; 3]], &[], &[]);
        assert_eq!(a, vec![[0.0; 3]]);
    }

    #[test]
    fn single_source_matches_pointmass() {
        let fi = TreeGravity::new(0.5, 0.0);
        let a = fi.accelerations(&[[0.0, 0.0, 0.0]], &[[0.0, 0.0, 2.0]], &[4.0]);
        assert!((a[0][2] - 1.0).abs() < 1e-12, "{:?}", a[0]);
    }

    #[test]
    fn target_on_source_with_softening_is_finite() {
        let fi = TreeGravity::new(0.5, 0.01);
        let a = fi.accelerations(&[[0.0; 3]], &[[0.0; 3]], &[1.0]);
        assert!(a[0].iter().all(|x| x.is_finite()));
    }
}
