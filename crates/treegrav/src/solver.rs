//! The Barnes–Hut walk and the two kernel personalities (Octgrav / Fi).

use crate::octree::Octree;
use crate::FLOPS_PER_INTERACTION;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// A tree-gravity solver: builds an octree over the sources, then walks it
/// for each target with the offset-aware (Salmon–Warren) multipole
/// acceptance criterion: a cell of size `s` whose center of mass sits a
/// distance `delta` from its geometric center is accepted when
/// `distance > s / theta + delta`.
pub struct TreeGravity {
    /// Opening angle.
    pub theta: f64,
    /// Softening squared.
    pub eps2: f64,
    /// Worker-thread cap for [`TreeGravity::accelerations_into`]: 0 =
    /// auto, 1 = strictly sequential (the steady-state walk then performs
    /// zero heap allocations).
    pub max_threads: usize,
    interactions: AtomicU64,
    /// Reused octree arena (rebuilt in place every call).
    tree: Octree,
    /// Reused per-worker traversal stacks.
    stacks: Vec<Vec<u32>>,
}

/// Minimum targets per worker thread before fanning out.
const PAR_GRAIN: usize = 64;

impl TreeGravity {
    /// New solver with opening angle `theta` and softening `eps`.
    pub fn new(theta: f64, eps: f64) -> TreeGravity {
        assert!(theta > 0.0 && theta < 2.0);
        TreeGravity {
            theta,
            eps2: eps * eps,
            max_threads: 0,
            interactions: AtomicU64::new(0),
            tree: Octree::new(),
            stacks: Vec::new(),
        }
    }

    /// Accelerations on `targets` due to `(s_pos, s_mass)`. G = 1.
    /// Allocating convenience path; hot callers use
    /// [`TreeGravity::accelerations_into`].
    pub fn accelerations(
        &self,
        targets: &[[f64; 3]],
        s_pos: &[[f64; 3]],
        s_mass: &[f64],
    ) -> Vec<[f64; 3]> {
        if s_pos.is_empty() || targets.is_empty() {
            return vec![[0.0; 3]; targets.len()];
        }
        let tree = Octree::build(s_pos, s_mass);
        let count = AtomicU64::new(0);
        let out: Vec<[f64; 3]> = targets
            .par_iter()
            .map(|t| {
                let mut stack: Vec<u32> = Vec::with_capacity(64);
                let mut acc = [0.0f64; 3];
                let n = walk_into(&tree, self.theta, self.eps2, t, &mut acc, &mut stack);
                count.fetch_add(n, Ordering::Relaxed);
                acc
            })
            .collect();
        self.interactions.store(count.into_inner(), Ordering::Relaxed);
        out
    }

    /// Accelerations on `targets` written into `out` (cleared and
    /// resized), reusing the solver's octree arena and traversal stacks —
    /// the zero-allocation steady-state path. Results are bitwise
    /// identical to [`TreeGravity::accelerations`].
    pub fn accelerations_into(
        &mut self,
        targets: &[[f64; 3]],
        s_pos: &[[f64; 3]],
        s_mass: &[f64],
        out: &mut Vec<[f64; 3]>,
    ) {
        out.clear();
        out.resize(targets.len(), [0.0; 3]);
        if s_pos.is_empty() || targets.is_empty() {
            self.interactions.store(0, Ordering::Relaxed);
            return;
        }
        self.tree.build_into(s_pos, s_mass);
        let n = targets.len();
        // core detection is lazy: `available_parallelism` allocates, so
        // the sequential mode must never call it
        let cap = if self.max_threads == 0 {
            std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1)
        } else {
            self.max_threads
        };
        let threads = cap.min(n.div_ceil(PAR_GRAIN)).max(1);
        self.stacks.resize_with(threads, Vec::new);
        let (tree, theta, eps2) = (&self.tree, self.theta, self.eps2);
        let total: u64 = if threads <= 1 {
            let stack = &mut self.stacks[0];
            let mut inter = 0u64;
            for (t, a) in targets.iter().zip(out.iter_mut()) {
                inter += walk_into(tree, theta, eps2, t, a, stack);
            }
            inter
        } else {
            let chunk = n.div_ceil(threads);
            std::thread::scope(|s| {
                let mut out_rest = out.as_mut_slice();
                let mut t_rest = targets;
                let mut handles = Vec::with_capacity(threads);
                for stack in self.stacks.iter_mut() {
                    let take = chunk.min(out_rest.len());
                    if take == 0 {
                        break;
                    }
                    let (oc, or) = out_rest.split_at_mut(take);
                    out_rest = or;
                    let (tc, tr) = t_rest.split_at(take);
                    t_rest = tr;
                    handles.push(s.spawn(move || {
                        let mut inter = 0u64;
                        for (t, a) in tc.iter().zip(oc.iter_mut()) {
                            inter += walk_into(tree, theta, eps2, t, a, stack);
                        }
                        inter
                    }));
                }
                handles.into_iter().map(|h| h.join().expect("walk worker panicked")).sum()
            })
        };
        self.interactions.store(total, Ordering::Relaxed);
    }

    /// Particle–node interactions performed by the last
    /// [`TreeGravity::accelerations`] / [`TreeGravity::accelerations_into`]
    /// call.
    pub fn last_interactions(&self) -> u64 {
        self.interactions.load(Ordering::Relaxed)
    }

    /// Modeled flop count of the last call.
    pub fn last_flops(&self) -> f64 {
        self.last_interactions() as f64 * FLOPS_PER_INTERACTION
    }
}

/// One Barnes–Hut walk; `acc` must start zeroed, `stack` is reused across
/// calls (no allocation once warm). Returns the interaction count.
fn walk_into(
    tree: &Octree,
    theta: f64,
    eps2: f64,
    t: &[f64; 3],
    acc: &mut [f64; 3],
    stack: &mut Vec<u32>,
) -> u64 {
    let nodes = tree.nodes();
    let mut n_inter = 0u64;
    stack.clear();
    stack.push(0);
    while let Some(ni) = stack.pop() {
        let node = &nodes[ni as usize];
        if node.count == 0 || node.mass == 0.0 {
            continue;
        }
        let dx = [node.com[0] - t[0], node.com[1] - t[1], node.com[2] - t[2]];
        let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2];
        let size = 2.0 * node.half_width;
        let is_leaf = node.particle != u32::MAX || node.children.iter().all(|&c| c == 0);
        // Offset-aware acceptance criterion (Salmon & Warren): the
        // plain `size/d < theta` test mis-weights cells whose center
        // of mass sits far from the geometric center; requiring
        // `d > size/theta + |com - center|` bounds the worst-case
        // monopole error instead of only the typical one.
        let delta2 = {
            let ox = [
                node.com[0] - node.center[0],
                node.com[1] - node.center[1],
                node.com[2] - node.center[2],
            ];
            ox[0] * ox[0] + ox[1] * ox[1] + ox[2] * ox[2]
        };
        let open_dist = size / theta + delta2.sqrt();
        if is_leaf || r2 > open_dist * open_dist {
            if r2 == 0.0 && eps2 == 0.0 {
                continue; // the target sits exactly on the node com
            }
            let r2s = r2 + eps2;
            let inv_r3 = 1.0 / (r2s * r2s.sqrt());
            for k in 0..3 {
                acc[k] += node.mass * dx[k] * inv_r3;
            }
            n_inter += 1;
        } else {
            for &c in &node.children {
                if c != 0 {
                    stack.push(c);
                }
            }
        }
    }
    n_inter
}

/// The Octgrav personality: GPU tree code with a wide opening angle.
pub struct Octgrav {
    /// The solver.
    pub solver: TreeGravity,
}

impl Octgrav {
    /// Octgrav defaults: θ = 0.75 (GPU codes run wide), ε = 0.01.
    pub fn new() -> Octgrav {
        Octgrav { solver: TreeGravity::new(0.75, 0.01) }
    }
}

impl Default for Octgrav {
    fn default() -> Self {
        Self::new()
    }
}

/// The Fi personality: CPU tree code with a tighter opening angle.
pub struct Fi {
    /// The solver.
    pub solver: TreeGravity,
}

impl Fi {
    /// Fi defaults: θ = 0.5, ε = 0.01.
    pub fn new() -> Fi {
        Fi { solver: TreeGravity::new(0.5, 0.01) }
    }
}

impl Default for Fi {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
        let mut x = seed.max(1);
        let mut rnd = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let pos: Vec<[f64; 3]> = (0..n).map(|_| [rnd(), rnd(), rnd()]).collect();
        let mass = vec![1.0 / n as f64; n];
        (pos, mass)
    }

    fn direct(
        targets: &[[f64; 3]],
        s_pos: &[[f64; 3]],
        s_mass: &[f64],
        eps2: f64,
    ) -> Vec<[f64; 3]> {
        targets
            .iter()
            .map(|t| {
                let mut a = [0.0; 3];
                for (p, m) in s_pos.iter().zip(s_mass) {
                    let dx = [p[0] - t[0], p[1] - t[1], p[2] - t[2]];
                    let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + eps2;
                    if r2 == 0.0 {
                        continue;
                    }
                    let inv_r3 = 1.0 / (r2 * r2.sqrt());
                    for k in 0..3 {
                        a[k] += m * dx[k] * inv_r3;
                    }
                }
                a
            })
            .collect()
    }

    fn rel_err(a: &[[f64; 3]], b: &[[f64; 3]]) -> f64 {
        let mut max = 0.0f64;
        for (x, y) in a.iter().zip(b) {
            let d = ((x[0] - y[0]).powi(2) + (x[1] - y[1]).powi(2) + (x[2] - y[2]).powi(2)).sqrt();
            let n = (y[0] * y[0] + y[1] * y[1] + y[2] * y[2]).sqrt().max(1e-12);
            max = max.max(d / n);
        }
        max
    }

    #[test]
    fn into_path_matches_allocating_path_bitwise() {
        let (pos, mass) = cloud(800, 17);
        let (tpos, _) = cloud(128, 4);
        let mut solver = TreeGravity::new(0.5, 0.01);
        let a = solver.accelerations(&tpos, &pos, &mass);
        let n_a = solver.last_interactions();
        let mut b = Vec::new();
        solver.accelerations_into(&tpos, &pos, &mass, &mut b);
        assert_eq!(a, b);
        assert_eq!(n_a, solver.last_interactions());
        // sequential mode agrees too, and reuses the arena across calls
        solver.max_threads = 1;
        let mut c = Vec::new();
        solver.accelerations_into(&tpos, &pos, &mass, &mut c);
        solver.accelerations_into(&tpos, &pos, &mass, &mut c);
        assert_eq!(a, c);
    }

    #[test]
    fn fi_is_accurate_to_percent_level() {
        let (pos, mass) = cloud(500, 3);
        let (tpos, _) = cloud(64, 9);
        let fi = Fi::new();
        let approx = fi.solver.accelerations(&tpos, &pos, &mass);
        let exact = direct(&tpos, &pos, &mass, fi.solver.eps2);
        let err = rel_err(&approx, &exact);
        assert!(err < 0.05, "Fi error {err}");
    }

    #[test]
    fn octgrav_is_coarser_but_cheaper_than_fi() {
        let (pos, mass) = cloud(2000, 5);
        let (tpos, _) = cloud(128, 8);
        let fi = Fi::new();
        let oct = Octgrav::new();
        let a_fi = fi.solver.accelerations(&tpos, &pos, &mass);
        let n_fi = fi.solver.last_interactions();
        let a_oct = oct.solver.accelerations(&tpos, &pos, &mass);
        let n_oct = oct.solver.last_interactions();
        assert!(n_oct < n_fi, "octgrav does fewer interactions: {n_oct} vs {n_fi}");
        let exact = direct(&tpos, &pos, &mass, fi.solver.eps2);
        assert!(rel_err(&a_oct, &exact) < 0.15, "octgrav still reasonable");
        assert!(rel_err(&a_fi, &exact) <= rel_err(&a_oct, &exact) + 0.01);
    }

    #[test]
    fn tree_beats_direct_asymptotically_in_interactions() {
        let (pos, mass) = cloud(4000, 1);
        let fi = Fi::new();
        let _ = fi.solver.accelerations(&pos, &pos, &mass);
        let inter = fi.solver.last_interactions();
        let direct_pairs = 4000u64 * 4000;
        assert!(inter * 4 < direct_pairs, "tree {inter} vs direct {direct_pairs} interactions");
    }

    #[test]
    fn empty_inputs() {
        let fi = Fi::new();
        assert!(fi.solver.accelerations(&[], &[], &[]).is_empty());
        let a = fi.solver.accelerations(&[[0.0; 3]], &[], &[]);
        assert_eq!(a, vec![[0.0; 3]]);
    }

    #[test]
    fn single_source_matches_pointmass() {
        let fi = TreeGravity::new(0.5, 0.0);
        let a = fi.accelerations(&[[0.0, 0.0, 0.0]], &[[0.0, 0.0, 2.0]], &[4.0]);
        assert!((a[0][2] - 1.0).abs() < 1e-12, "{:?}", a[0]);
    }

    #[test]
    fn target_on_source_with_softening_is_finite() {
        let fi = TreeGravity::new(0.5, 0.01);
        let a = fi.accelerations(&[[0.0; 3]], &[[0.0; 3]], &[1.0]);
        assert!(a[0].iter().all(|x| x.is_finite()));
    }
}
