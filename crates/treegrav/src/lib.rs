//! # jc-treegrav — Barnes–Hut tree gravity (Octgrav and Fi)
//!
//! Reproduction of the paper's *coupling* models: *"For this coupling, the
//! Octgrav gravitational tree model is used, implemented in C++ and CUDA.
//! If no GPU is available, the Fi model, written in Fortran, can be used
//! instead."*
//!
//! Both kernels compute the gravitational acceleration exerted by one
//! particle set (sources) on another (targets) — the "p-kick" phases of the
//! Fig 7 bridge scheme. They share one octree ([`octree::Octree`]) and one
//! tree-walk ([`solver::TreeGravity`]); they differ exactly the way the
//! paper's kernels differ:
//!
//! * [`Octgrav`] — GPU-hosted: wider opening angle (the GPU tree code
//!   trades accuracy for throughput), cost charged to the device model.
//! * [`Fi`] — CPU-hosted: tighter opening angle, rayon-parallel walk.
//!
//! Flop accounting ([`solver::TreeGravity::last_interactions`]) feeds the
//! jungle performance model: tree gravity is O(N log N) interactions versus
//! the O(N²) of direct summation, which is why the coupling model dominated
//! the CPU-only scenario in §6.2.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(unreachable_pub)]

pub mod octree;
pub mod solver;

pub use octree::Octree;
pub use solver::{Fi, Octgrav, TreeGravity};

/// Floating-point operations per particle–node interaction in the walk.
pub const FLOPS_PER_INTERACTION: f64 = 24.0;
