//! The octree: spatial decomposition with per-node mass moments.

/// One node of the octree.
#[derive(Clone, Debug)]
pub struct Node {
    /// Geometric center of the cell.
    pub center: [f64; 3],
    /// Half the cell edge length.
    pub half_width: f64,
    /// Total mass in the cell.
    pub mass: f64,
    /// Center of mass of the cell.
    pub com: [f64; 3],
    /// Indices of the 8 children in the node arena (0 = none).
    pub children: [u32; 8],
    /// If a leaf with a single particle: its index, else `u32::MAX`.
    pub particle: u32,
    /// Number of particles in the subtree.
    pub count: u32,
    /// Mass merged directly into this node (coincident particles in cells
    /// too small to subdivide further).
    pub merged_mass: f64,
    /// Mass-weighted position sum of merged particles.
    pub merged_mw: [f64; 3],
}

const NO_PARTICLE: u32 = u32::MAX;

/// An octree over a set of point masses.
///
/// Nodes live in a flat arena (`Vec<Node>`), children referenced by index —
/// cache-friendly and free of `Box` chasing (perf-book: dense arenas over
/// pointer trees).
pub struct Octree {
    nodes: Vec<Node>,
}

impl Octree {
    /// An empty tree whose node arena can be reused via
    /// [`Octree::build_into`].
    pub fn new() -> Octree {
        Octree { nodes: Vec::new() }
    }

    /// Build from positions and masses. Particles at identical positions
    /// are merged into the same leaf's moments once the cell size
    /// underflows.
    pub fn build(pos: &[[f64; 3]], mass: &[f64]) -> Octree {
        let mut tree = Octree { nodes: Vec::with_capacity(pos.len() * 2) };
        tree.build_into(pos, mass);
        tree
    }

    /// Rebuild over a new particle set, reusing the node arena. Once the
    /// arena is warm (capacity ≥ node count), rebuilding allocates
    /// nothing — this is what the p-kick phases call every step.
    pub fn build_into(&mut self, pos: &[[f64; 3]], mass: &[f64]) {
        assert_eq!(pos.len(), mass.len());
        self.nodes.clear();
        if pos.is_empty() {
            return;
        }
        let tree = self;
        // bounding cube
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for p in pos {
            for k in 0..3 {
                lo[k] = lo[k].min(p[k]);
                hi[k] = hi[k].max(p[k]);
            }
        }
        let mut half = 0.0f64;
        let mut center = [0.0; 3];
        for k in 0..3 {
            center[k] = 0.5 * (lo[k] + hi[k]);
            half = half.max(0.5 * (hi[k] - lo[k]));
        }
        half = (half * 1.001).max(1e-12);
        tree.nodes.push(Node {
            center,
            half_width: half,
            mass: 0.0,
            com: [0.0; 3],
            children: [0; 8],
            particle: NO_PARTICLE,
            count: 0,
            merged_mass: 0.0,
            merged_mw: [0.0; 3],
        });
        for i in 0..pos.len() {
            tree.insert(0, i as u32, pos, mass);
        }
        tree.compute_moments(0, pos, mass);
    }

    /// Nodes (arena order; index 0 is the root).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn octant(center: &[f64; 3], p: &[f64; 3]) -> usize {
        (usize::from(p[0] >= center[0]))
            | (usize::from(p[1] >= center[1]) << 1)
            | (usize::from(p[2] >= center[2]) << 2)
    }

    fn child_center(center: &[f64; 3], half: f64, oct: usize) -> [f64; 3] {
        let q = half * 0.5;
        [
            center[0] + if oct & 1 != 0 { q } else { -q },
            center[1] + if oct & 2 != 0 { q } else { -q },
            center[2] + if oct & 4 != 0 { q } else { -q },
        ]
    }

    fn insert(&mut self, node: usize, pi: u32, pos: &[[f64; 3]], mass: &[f64]) {
        self.nodes[node].count += 1;
        // Tiny cells: merge into moments without subdividing further
        // (protects against coincident particles and degenerate bounding
        // boxes, e.g. a single-particle tree).
        if self.nodes[node].half_width < 1e-10 {
            let m = mass[pi as usize];
            let p = pos[pi as usize];
            let n = &mut self.nodes[node];
            n.merged_mass += m;
            for (w, pk) in n.merged_mw.iter_mut().zip(&p) {
                *w += m * pk;
            }
            return;
        }
        if self.nodes[node].count == 1 {
            self.nodes[node].particle = pi;
            return;
        }
        // If this node held a single particle, push it down first.
        if self.nodes[node].particle != NO_PARTICLE {
            let old = self.nodes[node].particle;
            self.nodes[node].particle = NO_PARTICLE;
            self.push_down(node, old, pos, mass);
        }
        self.push_down(node, pi, pos, mass);
    }

    fn push_down(&mut self, node: usize, pi: u32, pos: &[[f64; 3]], mass: &[f64]) {
        let (center, half) = (self.nodes[node].center, self.nodes[node].half_width);
        let oct = Self::octant(&center, &pos[pi as usize]);
        let child = self.nodes[node].children[oct];
        let child = if child == 0 {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                center: Self::child_center(&center, half, oct),
                half_width: half * 0.5,
                mass: 0.0,
                com: [0.0; 3],
                children: [0; 8],
                particle: NO_PARTICLE,
                count: 0,
                merged_mass: 0.0,
                merged_mw: [0.0; 3],
            });
            self.nodes[node].children[oct] = idx;
            idx
        } else {
            child
        };
        self.insert(child as usize, pi, pos, mass);
    }

    fn compute_moments(&mut self, node: usize, pos: &[[f64; 3]], mass: &[f64]) {
        // post-order accumulation of (mass, com)
        let children = self.nodes[node].children;
        let mut m = self.nodes[node].merged_mass;
        let mut com = self.nodes[node].merged_mw;
        if self.nodes[node].particle != NO_PARTICLE {
            let pi = self.nodes[node].particle as usize;
            m += mass[pi];
            for k in 0..3 {
                com[k] += mass[pi] * pos[pi][k];
            }
        }
        for &c in &children {
            if c != 0 {
                self.compute_moments(c as usize, pos, mass);
                let ch = &self.nodes[c as usize];
                m += ch.mass;
                for (acc, x) in com.iter_mut().zip(&ch.com) {
                    *acc += ch.mass * x;
                }
            }
        }
        let n = &mut self.nodes[node];
        n.mass = m;
        if m > 0.0 {
            for c in &mut com {
                *c /= m;
            }
            n.com = com;
        } else {
            n.com = n.center;
        }
    }
}

impl Default for Octree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_is_reused_across_rebuilds() {
        let mut pos: Vec<[f64; 3]> = (0..200)
            .map(|i| [(i as f64 * 0.7).sin(), (i as f64 * 0.3).cos(), i as f64 * 1e-3])
            .collect();
        let mass = vec![1.0 / 200.0; 200];
        let mut t = Octree::new();
        t.build_into(&pos, &mass);
        let fresh = Octree::build(&pos, &mass);
        assert_eq!(t.nodes().len(), fresh.nodes().len());
        let cap = t.nodes.capacity();
        for p in &mut pos {
            p[0] += 1e-4;
        }
        t.build_into(&pos, &mass);
        assert!(t.nodes.capacity() >= cap, "arena shrank");
        assert!((t.nodes()[0].mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn root_moments_match_totals() {
        let pos = vec![[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 2.0, 0.0]];
        let mass = vec![1.0, 2.0, 3.0];
        let t = Octree::build(&pos, &mass);
        let root = &t.nodes()[0];
        assert!((root.mass - 6.0).abs() < 1e-12);
        // com = (0*1 + 1*2 + 0*3)/6, (0 + 0 + 2*3)/6
        assert!((root.com[0] - 2.0 / 6.0).abs() < 1e-12);
        assert!((root.com[1] - 1.0).abs() < 1e-12);
        assert_eq!(root.count, 3);
    }

    #[test]
    fn empty_tree() {
        let t = Octree::build(&[], &[]);
        assert!(t.is_empty());
    }

    #[test]
    fn single_particle_tree() {
        let t = Octree::build(&[[1.0, 2.0, 3.0]], &[5.0]);
        let root = &t.nodes()[0];
        assert_eq!(root.count, 1);
        assert_eq!(root.com, [1.0, 2.0, 3.0]);
        assert_eq!(root.mass, 5.0);
    }

    #[test]
    fn coincident_particles_do_not_hang() {
        let pos = vec![[0.5, 0.5, 0.5]; 10];
        let mass = vec![1.0; 10];
        let t = Octree::build(&pos, &mass);
        assert_eq!(t.nodes()[0].count, 10);
    }

    #[test]
    fn node_count_is_linearish() {
        let mut pos = Vec::new();
        let mut x = 1u64;
        let mut rnd = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..1000 {
            pos.push([rnd(), rnd(), rnd()]);
        }
        let mass = vec![1.0; 1000];
        let t = Octree::build(&pos, &mass);
        assert!(t.nodes().len() < 10_000, "arena size {}", t.nodes().len());
    }
}
