//! Golden-vector determinism tests: the tree walk over the reused node
//! arena must reproduce the pre-refactor build-from-scratch walk bitwise.
//! Captured from the original implementation (96-source / 16-target LCG
//! clouds, θ = 0.5, ε = 0.01) before the scratch refactor.

use jc_treegrav::TreeGravity;

const NT: usize = 16;
const GOLDEN_INTERACTIONS: u64 = 1014;

#[rustfmt::skip]
const GOLDEN_ACC: [u64; NT * 3] = [
    0x3ffb49779bfeccb9, 0xbfe842a87ad56f78, 0xc00339d15f211832,
    0x3ff73cbc8f57cbfb, 0xbfef3f1b731be84c, 0x3ff2aaea72f64ab9,
    0x3fdd3906992b292a, 0x3fccb155a3122e2f, 0xbffb2086b6f685f5,
    0x400253a941b3eeb1, 0x3fdb9a9326a83b3d, 0xbff10a4583c906e3,
    0xbfdc8abd5a31f5af, 0x40069e32e9bcd6c5, 0xbff86584fd997a43,
    0x4008bcef7edf162d, 0xbfecd506acd2f69e, 0x3fe9b280a385c54a,
    0xbfff9b2f577c8091, 0x3fe84f1646fe940d, 0x3ffbdfa64ec92bcf,
    0x4001bec854f617e0, 0xbff714dcfbcd96c8, 0x3ff4e4ebee9e7d07,
    0xbfdebf1ae2e4a8e3, 0x3ff6629b7da3707b, 0xc00922f0cb0a7ebc,
    0x3ff76d391b018e44, 0x3ff0b4ee56db7b08, 0x3fea4ba94f66c540,
    0x3ff8320af82574c2, 0x3ff2946f5b117697, 0xbfc1c984a7f6a7bb,
    0x3fd57efda43dbced, 0x3ff68c27d20be8d6, 0x3fe12c7b9354d46a,
    0xbfeb7507b0c5a088, 0x3fee8c95e5804c7f, 0x3ffdc17230db1bc2,
    0xc001488fc7d6cb68, 0x3fd9ddab4798b7a7, 0x3ff4acae01841e7d,
    0x3fffcf5cf0d691f1, 0x3ff81c229e8debb8, 0x3ff4bfccd7ae1328,
    0xbfe2296a67e753b5, 0xbfd66dd824521019, 0x3ff520c0b4bc2ba8,
];

fn cloud(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
    let mut x = seed.max(1);
    let mut rnd = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let pos: Vec<[f64; 3]> = (0..n).map(|_| [rnd(), rnd(), rnd()]).collect();
    let mass = vec![1.0 / n as f64; n];
    (pos, mass)
}

fn assert_bits(got: &[[f64; 3]]) {
    for (i, a) in got.iter().enumerate() {
        for k in 0..3 {
            assert_eq!(
                a[k].to_bits(),
                GOLDEN_ACC[i * 3 + k],
                "acc[{i}][{k}] = {} diverges from the pre-refactor walk",
                a[k]
            );
        }
    }
}

#[test]
fn tree_walk_matches_pre_refactor_golden() {
    let (pos, mass) = cloud(96, 3);
    let (tpos, _) = cloud(NT, 9);
    let fi = TreeGravity::new(0.5, 0.01);
    let acc = fi.accelerations(&tpos, &pos, &mass);
    assert_bits(&acc);
    assert_eq!(fi.last_interactions(), GOLDEN_INTERACTIONS);
}

#[test]
fn reused_arena_walk_matches_pre_refactor_golden() {
    let (pos, mass) = cloud(96, 3);
    let (tpos, _) = cloud(NT, 9);
    for threads in [0, 1] {
        let mut fi = TreeGravity::new(0.5, 0.01);
        fi.max_threads = threads;
        let mut acc = Vec::new();
        // warm the arena on a different set, then rebuild into it
        fi.accelerations_into(&tpos, &tpos, &[1.0; NT], &mut acc);
        fi.accelerations_into(&tpos, &pos, &mass, &mut acc);
        assert_bits(&acc);
        assert_eq!(fi.last_interactions(), GOLDEN_INTERACTIONS, "threads = {threads}");
    }
}
