//! Property tests: the Barnes-Hut approximation against direct summation.

use jc_treegrav::TreeGravity;
use proptest::prelude::*;

fn direct(targets: &[[f64; 3]], s_pos: &[[f64; 3]], s_mass: &[f64], eps2: f64) -> Vec<[f64; 3]> {
    targets
        .iter()
        .map(|t| {
            let mut a = [0.0; 3];
            for (p, m) in s_pos.iter().zip(s_mass) {
                let dx = [p[0] - t[0], p[1] - t[1], p[2] - t[2]];
                let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + eps2;
                if r2 == 0.0 {
                    continue;
                }
                let inv_r3 = 1.0 / (r2 * r2.sqrt());
                for k in 0..3 {
                    a[k] += m * dx[k] * inv_r3;
                }
            }
            a
        })
        .collect()
}

fn arb_cloud(n: usize) -> impl Strategy<Value = (Vec<[f64; 3]>, Vec<f64>)> {
    (
        proptest::collection::vec(
            (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0).prop_map(|(x, y, z)| [x, y, z]),
            n,
        ),
        proptest::collection::vec(0.01f64..1.0, n),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tree accelerations stay within a few percent of direct summation
    /// for any random cloud.
    #[test]
    fn tree_matches_direct((pos, mass) in arb_cloud(200)) {
        let solver = TreeGravity::new(0.5, 0.05);
        let approx = solver.accelerations(&pos, &pos, &mass);
        let exact = direct(&pos, &pos, &mass, solver.eps2);
        for (a, e) in approx.iter().zip(&exact) {
            let d = ((a[0]-e[0]).powi(2)+(a[1]-e[1]).powi(2)+(a[2]-e[2]).powi(2)).sqrt();
            let n = (e[0]*e[0]+e[1]*e[1]+e[2]*e[2]).sqrt().max(1e-9);
            prop_assert!(d / n < 0.10, "rel err {}", d / n);
        }
    }

    /// The SoA walk matches the scalar walk within a tight relative
    /// tolerance on any random cloud, with identical interaction counts
    /// (same traversal, different accumulation order only).
    #[test]
    fn simd_walk_matches_scalar((pos, mass) in arb_cloud(300)) {
        let mut scalar = TreeGravity::new(0.6, 0.02);
        let mut a = Vec::new();
        scalar.accelerations_into(&pos, &pos, &mass, &mut a);
        let n_scalar = scalar.last_interactions();
        let mut simd = TreeGravity::new(0.6, 0.02);
        simd.simd = true;
        let mut b = Vec::new();
        simd.accelerations_into(&pos, &pos, &mass, &mut b);
        prop_assert_eq!(n_scalar, simd.last_interactions());
        let scale = a
            .iter()
            .flatten()
            .fold(0.0f64, |s, x| s.max(x.abs()))
            .max(1e-300);
        for (i, (x, y)) in b.iter().zip(&a).enumerate() {
            for k in 0..3 {
                prop_assert!(
                    (x[k] - y[k]).abs() <= 1e-11 * scale,
                    "acc[{}][{}]: {} vs {}", i, k, x[k], y[k]
                );
            }
        }
    }

    /// Root node moments always equal total mass / center of mass.
    #[test]
    fn octree_root_moments((pos, mass) in arb_cloud(64)) {
        let tree = jc_treegrav::Octree::build(&pos, &mass);
        let root = &tree.nodes()[0];
        let mt: f64 = mass.iter().sum();
        prop_assert!((root.mass - mt).abs() < 1e-9 * mt);
        let mut com = [0.0; 3];
        for (p, m) in pos.iter().zip(&mass) {
            for (acc, x) in com.iter_mut().zip(p) {
                *acc += m * x / mt;
            }
        }
        for (got, want) in root.com.iter().zip(&com) {
            prop_assert!((got - want).abs() < 1e-9, "com mismatch");
        }
    }

    /// Wider opening angles never do more interactions.
    #[test]
    fn theta_monotonicity((pos, mass) in arb_cloud(300)) {
        let tight = TreeGravity::new(0.3, 0.05);
        let wide = TreeGravity::new(1.0, 0.05);
        tight.accelerations(&pos, &pos, &mass);
        let n_tight = tight.last_interactions();
        wide.accelerations(&pos, &pos, &mass);
        let n_wide = wide.last_interactions();
        prop_assert!(n_wide <= n_tight, "{n_wide} > {n_tight}");
    }
}
