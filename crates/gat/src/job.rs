//! Job descriptions, states and status events.

use jc_netsim::{Actor, ActorId, HostId, SimDuration};

/// Identifies a GAT job (unique within one realm).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GatJobId(pub u64);

/// Where one process of a job landed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcessSeat {
    /// Process rank within the job (0-based).
    pub rank: u32,
    /// Total processes in the job.
    pub total: u32,
    /// Host the process runs on.
    pub host: HostId,
    /// The spawned actor.
    pub actor: ActorId,
}

/// The factory producing a job's process actors, one per rank.
///
/// The middleware actor invokes it once per process at job start. The
/// closure receives `(rank, total, host)` — workers that are internally
/// parallel (an MPI Gadget worker, say) use `rank`/`total` to set up their
/// communicator.
pub type ProcessFactory = Box<dyn FnMut(u32, u32, HostId) -> Box<dyn Actor>>;

/// A middleware-independent job description (the JavaGAT
/// `JobDescription` + `SoftwareDescription`).
pub struct JobDescription {
    /// Executable name (cosmetic — shown in monitoring).
    pub executable: String,
    /// Number of nodes to allocate.
    pub nodes: u32,
    /// Processes per node.
    pub processes_per_node: u32,
    /// Reservation length (None = site default).
    pub walltime: Option<SimDuration>,
    /// Bytes to pre-stage (input files) from the submitter to the resource.
    pub stage_in_bytes: u64,
    /// Bytes to post-stage (output files) back after completion.
    pub stage_out_bytes: u64,
    /// Produces the process actors.
    pub factory: ProcessFactory,
}

impl JobDescription {
    /// A single-node, single-process job with no staging.
    pub fn simple(
        executable: impl Into<String>,
        factory: impl FnMut(u32, u32, HostId) -> Box<dyn Actor> + 'static,
    ) -> JobDescription {
        JobDescription {
            executable: executable.into(),
            nodes: 1,
            processes_per_node: 1,
            walltime: None,
            stage_in_bytes: 0,
            stage_out_bytes: 0,
            factory: Box::new(factory),
        }
    }

    /// Total process count.
    pub fn total_processes(&self) -> u32 {
        self.nodes * self.processes_per_node
    }
}

/// Lifecycle states of a GAT job (JavaGAT's `Job.JobState`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobState {
    /// Accepted by the adapter; files are being pre-staged.
    PreStaging,
    /// In the site's queue waiting for nodes.
    Scheduled,
    /// Processes running.
    Running,
    /// Output being post-staged.
    PostStaging,
    /// Finished successfully.
    Stopped,
    /// The adapter could not submit (no adapter, unreachable, oversized).
    SubmissionError,
    /// Killed: by the scheduler (walltime) or by a cancel.
    Killed,
}

/// Status callback streamed to the submitter.
#[derive(Clone, Debug)]
pub struct GatEvent {
    /// Which job.
    pub job: GatJobId,
    /// New state.
    pub state: JobState,
    /// Seats, populated on the transition to `Running`.
    pub seats: Vec<ProcessSeat>,
    /// Human-readable detail (error text, kill reason).
    pub detail: String,
}

impl GatEvent {
    pub(crate) fn new(job: GatJobId, state: JobState) -> GatEvent {
        GatEvent { job, state, seats: Vec::new(), detail: String::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jc_netsim::{Ctx, Msg};

    struct Nop;
    impl Actor for Nop {
        fn handle(&mut self, _: &mut Ctx<'_>, _: Msg) {}
    }

    #[test]
    fn simple_description_defaults() {
        let d = JobDescription::simple("sse", |_, _, _| Box::new(Nop));
        assert_eq!(d.nodes, 1);
        assert_eq!(d.total_processes(), 1);
        assert_eq!(d.stage_in_bytes, 0);
    }

    #[test]
    fn total_processes_multiplies() {
        let mut d = JobDescription::simple("gadget", |_, _, _| Box::new(Nop));
        d.nodes = 8;
        d.processes_per_node = 2;
        assert_eq!(d.total_processes(), 16);
    }
}
