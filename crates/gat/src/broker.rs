//! The resource broker: per-site middleware actors and the realm registry.

use crate::adapter::MiddlewareKind;
use crate::job::{GatEvent, GatJobId, JobDescription, JobState, ProcessSeat};
use jc_netsim::batch::{BatchEvent, BatchJobId, BatchQueue};
use jc_netsim::metrics::TrafficClass;
use jc_netsim::topology::SiteId;
use jc_netsim::{Actor, ActorId, Ctx, HostId, Msg, Sim, SimDuration};
use std::collections::HashMap;
use std::rc::Rc;

/// A resource as the user's grid file describes it: a site, the hosts jobs
/// may run on, and the middlewares installed there.
#[derive(Clone, Debug)]
pub struct ResourceDesc {
    /// Resource name (e.g. `"DAS-4 (VU)"`).
    pub name: String,
    /// The site.
    pub site: SiteId,
    /// Hosts jobs can be placed on (usually the compute nodes, not the
    /// front-end).
    pub nodes: Vec<HostId>,
    /// Installed middleware.
    pub supported: Vec<MiddlewareKind>,
    /// The head-node actor accepting submissions.
    pub broker: ActorId,
}

/// Submission request sent to a [`MiddlewareActor`]. The transfer of this
/// message carries the pre-staged input bytes.
pub struct SubmitRequest {
    /// Job id chosen by the submitter (unique realm-wide by convention:
    /// use [`GatRealm::next_job_id`]).
    pub job: GatJobId,
    /// What to run.
    pub desc: JobDescription,
    /// Who receives [`GatEvent`] callbacks.
    pub reply_to: ActorId,
    /// Which adapter to use (see [`crate::select_adapter`]).
    pub adapter: MiddlewareKind,
}

/// Cancel request for a job.
#[derive(Clone, Copy, Debug)]
pub struct CancelRequest(pub GatJobId);

/// Sent to every spawned process right after start so it knows its job
/// coordinates and can report exit.
#[derive(Clone, Copy, Debug)]
pub struct ProcStart {
    /// The middleware actor to notify on exit.
    pub broker: ActorId,
    /// Job id.
    pub job: GatJobId,
    /// This process's rank.
    pub rank: u32,
    /// Total processes.
    pub total: u32,
}

/// A process reports voluntary exit.
#[derive(Clone, Copy, Debug)]
pub struct ProcExit {
    /// Job id.
    pub job: GatJobId,
    /// Exiting rank.
    pub rank: u32,
}

/// Internal scheduler tick.
struct Tick;

/// Internal: job has passed the adapter overhead and may enter the queue.
struct Accepted(GatJobId);

struct RunningJob {
    /// Executable name, surfaced in the job table views.
    #[allow(dead_code)]
    desc_executable: String,
    reply_to: ActorId,
    seats: Vec<ProcessSeat>,
    live_procs: u32,
    stage_out_bytes: u64,
    batch: Option<BatchJobId>,
    hosts: Vec<HostId>,
    /// Queue-backed jobs own their nodes; queue-less (local/ssh/zorilla)
    /// jobs share them (the OS multiplexes, no reservation exists).
    exclusive: bool,
}

struct PendingJob {
    desc: JobDescription,
    reply_to: ActorId,
    adapter: MiddlewareKind,
}

/// The head node of one resource: accepts submissions, runs the batch
/// queue, allocates hosts, spawns processes, reports status.
pub struct MiddlewareActor {
    name: String,
    nodes: Vec<HostId>,
    node_free: Vec<bool>,
    queue: BatchQueue,
    pending: HashMap<GatJobId, PendingJob>,
    batch_to_job: HashMap<BatchJobId, GatJobId>,
    running: HashMap<GatJobId, RunningJob>,
    finished: Vec<GatJobId>,
}

impl MiddlewareActor {
    /// Create the head-node actor for a resource with the given compute
    /// nodes.
    pub fn new(name: impl Into<String>, nodes: Vec<HostId>) -> MiddlewareActor {
        assert!(!nodes.is_empty(), "resource needs at least one node");
        let n = nodes.len();
        MiddlewareActor {
            name: name.into(),
            node_free: vec![true; n],
            nodes,
            queue: BatchQueue::new(n as u32),
            pending: HashMap::new(),
            batch_to_job: HashMap::new(),
            running: HashMap::new(),
            finished: Vec::new(),
        }
    }

    fn emit(&self, ctx: &mut Ctx<'_>, to: ActorId, ev: GatEvent) {
        ctx.send_net(to, 256, TrafficClass::Control, ev);
    }

    fn allocate_hosts(&mut self, n: u32) -> Vec<HostId> {
        let mut picked = Vec::with_capacity(n as usize);
        for (i, free) in self.node_free.iter_mut().enumerate() {
            if picked.len() as u32 == n {
                break;
            }
            if *free {
                *free = false;
                picked.push(self.nodes[i]);
            }
        }
        assert_eq!(picked.len() as u32, n, "batch queue admitted an oversubscribed job");
        picked
    }

    fn release_hosts(&mut self, hosts: &[HostId]) {
        for h in hosts {
            if let Some(i) = self.nodes.iter().position(|x| x == h) {
                self.node_free[i] = true;
            }
        }
    }

    /// Pick `n` hosts without reserving them (queue-less adapters).
    fn pick_shared_hosts(&self, n: u32) -> Vec<HostId> {
        self.nodes.iter().copied().cycle().take(n as usize).collect()
    }

    fn start_job(
        &mut self,
        ctx: &mut Ctx<'_>,
        job_id: GatJobId,
        batch: Option<BatchJobId>,
        exclusive: bool,
    ) {
        let Some(mut p) = self.pending.remove(&job_id) else { return };
        let total = p.desc.total_processes();
        let hosts = if exclusive {
            self.allocate_hosts(p.desc.nodes)
        } else {
            self.pick_shared_hosts(p.desc.nodes)
        };
        let mut seats = Vec::with_capacity(total as usize);
        let mut rank = 0;
        for h in &hosts {
            for _ in 0..p.desc.processes_per_node {
                let actor = ctx.spawn(*h, (p.desc.factory)(rank, total, *h));
                seats.push(ProcessSeat { rank, total, host: *h, actor });
                // Tell the process its coordinates (arrives right after
                // its on_start).
                ctx.schedule_for(
                    actor,
                    SimDuration::ZERO,
                    ProcStart { broker: ctx.id(), job: job_id, rank, total },
                );
                rank += 1;
            }
        }
        let mut ev = GatEvent::new(job_id, JobState::Running);
        ev.seats = seats.clone();
        self.emit(ctx, p.reply_to, ev);
        self.running.insert(
            job_id,
            RunningJob {
                desc_executable: p.desc.executable.clone(),
                reply_to: p.reply_to,
                seats,
                live_procs: total,
                stage_out_bytes: p.desc.stage_out_bytes,
                batch,
                hosts,
                exclusive,
            },
        );
    }

    fn finish_job(&mut self, ctx: &mut Ctx<'_>, job_id: GatJobId, state: JobState, detail: &str) {
        let Some(job) = self.running.remove(&job_id) else { return };
        if job.exclusive {
            self.release_hosts(&job.hosts);
        }
        if let Some(b) = job.batch {
            self.queue.complete(b);
        }
        for seat in &job.seats {
            ctx.kill_actor(seat.actor);
        }
        if state == JobState::Stopped && job.stage_out_bytes > 0 {
            self.emit(ctx, job.reply_to, GatEvent::new(job_id, JobState::PostStaging));
            // post-stage output back to the submitter: charged as staging
            // traffic on the message itself
            let mut ev = GatEvent::new(job_id, JobState::Stopped);
            ev.detail = detail.to_string();
            ctx.send_net(job.reply_to, job.stage_out_bytes + 256, TrafficClass::Staging, ev);
        } else {
            let mut ev = GatEvent::new(job_id, state);
            ev.detail = detail.to_string();
            self.emit(ctx, job.reply_to, ev);
        }
        self.finished.push(job_id);
    }

    fn pump_queue(&mut self, ctx: &mut Ctx<'_>) {
        let events = self.queue.advance(ctx.now());
        for ev in events {
            match ev {
                BatchEvent::Started(b) => {
                    if let Some(&job) = self.batch_to_job.get(&b) {
                        self.emit_scheduled_to_running(ctx, job, b);
                    }
                }
                BatchEvent::Killed(b) => {
                    if let Some(&job) = self.batch_to_job.get(&b) {
                        self.finish_job(ctx, job, JobState::Killed, "reservation expired");
                    }
                }
            }
        }
        if let Some(deadline) = self.queue.next_deadline() {
            let now = ctx.now();
            if deadline > now {
                ctx.schedule_self(deadline - now, Tick);
            }
        }
    }

    fn emit_scheduled_to_running(&mut self, ctx: &mut Ctx<'_>, job: GatJobId, batch: BatchJobId) {
        self.start_job(ctx, job, Some(batch), true);
    }
}

impl Actor for MiddlewareActor {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<SubmitRequest>() {
            Ok((_, req)) => {
                let SubmitRequest { job, desc, reply_to, adapter } = req;
                if desc.nodes as usize > self.nodes.len() {
                    let mut ev = GatEvent::new(job, JobState::SubmissionError);
                    ev.detail = format!(
                        "job wants {} nodes, resource {} has {}",
                        desc.nodes,
                        self.name,
                        self.nodes.len()
                    );
                    self.emit(ctx, reply_to, ev);
                    return;
                }
                self.emit(ctx, reply_to, GatEvent::new(job, JobState::PreStaging));
                self.pending.insert(job, PendingJob { desc, reply_to, adapter });
                // adapter overhead before the job reaches the queue/starts
                ctx.schedule_self(adapter.submit_overhead(), Accepted(job));
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<Accepted>() {
            Ok((_, Accepted(job))) => {
                let Some(p) = self.pending.get(&job) else { return };
                if p.adapter.uses_batch_queue() {
                    let b = self.queue.submit(p.desc.nodes, p.desc.walltime);
                    self.batch_to_job.insert(b, job);
                    self.emit(ctx, p.reply_to, GatEvent::new(job, JobState::Scheduled));
                    self.pump_queue(ctx);
                } else {
                    // queue-less adapters (local/ssh/zorilla): no
                    // reservation exists; processes share the machine and
                    // the OS (here: the BusyLedger) multiplexes them.
                    self.start_job(ctx, job, None, false);
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<ProcExit>() {
            Ok((_, ProcExit { job, rank: _ })) => {
                if let Some(r) = self.running.get_mut(&job) {
                    r.live_procs = r.live_procs.saturating_sub(1);
                    if r.live_procs == 0 {
                        self.finish_job(ctx, job, JobState::Stopped, "exit 0");
                        self.pump_queue(ctx);
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let msg = match msg.downcast::<CancelRequest>() {
            Ok((_, CancelRequest(job))) => {
                if self.pending.remove(&job).is_some() {
                    return;
                }
                if self.running.contains_key(&job) {
                    self.finish_job(ctx, job, JobState::Killed, "cancelled by user");
                    self.pump_queue(ctx);
                }
                return;
            }
            Err(m) => m,
        };
        if msg.downcast::<Tick>().is_ok() {
            self.pump_queue(ctx);
        }
    }

    fn name(&self) -> String {
        format!("gat:{}", self.name)
    }
}

/// The realm: all resources a user has access to (their "grid file").
#[derive(Clone, Default)]
pub struct GatRealm {
    resources: HashMap<String, Rc<ResourceDesc>>,
    next_job: std::rc::Rc<std::cell::Cell<u64>>,
}

impl GatRealm {
    /// Empty realm.
    pub fn new() -> GatRealm {
        GatRealm::default()
    }

    /// Install a middleware actor for a resource and register it. The
    /// broker is placed on `head` (usually the site front-end).
    pub fn install(
        &mut self,
        sim: &mut Sim,
        name: impl Into<String>,
        site: SiteId,
        head: HostId,
        nodes: Vec<HostId>,
        supported: Vec<MiddlewareKind>,
    ) -> Rc<ResourceDesc> {
        let name = name.into();
        let broker =
            sim.add_actor(head, Box::new(MiddlewareActor::new(name.clone(), nodes.clone())));
        let desc = Rc::new(ResourceDesc { name: name.clone(), site, nodes, supported, broker });
        self.resources.insert(name, desc.clone());
        desc
    }

    /// Look up a resource by name.
    pub fn resource(&self, name: &str) -> Option<Rc<ResourceDesc>> {
        self.resources.get(name).cloned()
    }

    /// All resource names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.resources.keys().cloned().collect();
        v.sort();
        v
    }

    /// Allocate a realm-unique job id.
    pub fn next_job_id(&self) -> GatJobId {
        let id = self.next_job.get();
        self.next_job.set(id + 1);
        GatJobId(id)
    }
}
