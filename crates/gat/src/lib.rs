//! # jc-gat — JavaGAT: one interface to every middleware
//!
//! Reproduction of JavaGAT (van Nieuwpoort et al. \[15\]; §3 of the paper):
//! *"JavaGAT is a generic and simple interface to middleware. [...] Using
//! familiar concepts such as Files and Jobs, a programmer is able to start
//! applications in a Jungle. JavaGAT provides this functionality using
//! Adapters, that interact with a middleware to implement the required
//! task [...] JavaGAT will automatically select the appropriate adapter for
//! each resource, and adapters exist for most common middleware including
//! Globus, Unicore, SSH, Glite, SGE, PBS."*
//!
//! Here a *resource* is a simulated site with a declared set of supported
//! middlewares. One [`broker::MiddlewareActor`] per site plays the head
//! node: it applies the selected adapter's submission overhead, runs the
//! site's batch queue (PBS/SGE/Globus), stages files, allocates concrete
//! hosts, spawns the job's process actors, and streams
//! [`job::GatEvent`] status callbacks to the submitter — including the
//! `KilledByScheduler` fate when a reservation expires mid-run, the fault
//! the paper's prototype could not survive.
//!
//! Adapter auto-selection: [`adapter::select_adapter`] walks a preference
//! order and picks the first middleware the resource supports, falling back
//! to [`adapter::MiddlewareKind::Zorilla`] when nothing conventional is
//! installed (Zorilla "is ideal in cases where no middleware is
//! available").

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod adapter;
pub mod broker;
pub mod job;

pub use adapter::{select_adapter, AdapterError, MiddlewareKind};
pub use broker::{GatRealm, MiddlewareActor, ResourceDesc, SubmitRequest};
pub use job::{GatEvent, GatJobId, JobDescription, JobState, ProcessFactory, ProcessSeat};
