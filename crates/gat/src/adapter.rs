//! Middleware adapters and automatic adapter selection.

use jc_netsim::SimDuration;

/// The middlewares JavaGAT adapters exist for in this reproduction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MiddlewareKind {
    /// Fork/exec on the local machine (no middleware).
    Local,
    /// Plain SSH to a reachable host.
    Ssh,
    /// Sun Grid Engine batch queue.
    Sge,
    /// PBS/Torque batch queue.
    Pbs,
    /// Globus GRAM (heavier handshake in front of a batch queue).
    Globus,
    /// Zorilla peer-to-peer scheduling.
    Zorilla,
}

impl MiddlewareKind {
    /// Submission overhead: the time between the submit call arriving at
    /// the head node and the job being visible in the queue (or running,
    /// for queue-less adapters). Calibrated to folklore magnitudes: ssh is
    /// instant-ish, batch schedulers poll on multi-second cycles, GRAM adds
    /// a heavyweight authentication round.
    pub fn submit_overhead(self) -> SimDuration {
        match self {
            MiddlewareKind::Local => SimDuration::from_millis(5),
            MiddlewareKind::Ssh => SimDuration::from_millis(150),
            MiddlewareKind::Sge => SimDuration::from_secs(1),
            MiddlewareKind::Pbs => SimDuration::from_secs(2),
            MiddlewareKind::Globus => SimDuration::from_secs(5),
            MiddlewareKind::Zorilla => SimDuration::from_millis(300),
        }
    }

    /// Does this adapter schedule through the site batch queue?
    pub fn uses_batch_queue(self) -> bool {
        matches!(self, MiddlewareKind::Sge | MiddlewareKind::Pbs | MiddlewareKind::Globus)
    }

    /// Adapter name as JavaGAT would report it.
    pub fn name(self) -> &'static str {
        match self {
            MiddlewareKind::Local => "local",
            MiddlewareKind::Ssh => "sshtrilead",
            MiddlewareKind::Sge => "sge",
            MiddlewareKind::Pbs => "pbs",
            MiddlewareKind::Globus => "globus",
            MiddlewareKind::Zorilla => "zorilla",
        }
    }
}

/// Errors from adapter selection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdapterError {
    /// The resource supports none of the preferred middlewares.
    NoAdapter,
}

/// Default preference order: cheap and direct first, heavyweight last —
/// JavaGAT tries adapters in order until one succeeds.
pub const DEFAULT_PREFERENCE: [MiddlewareKind; 6] = [
    MiddlewareKind::Local,
    MiddlewareKind::Ssh,
    MiddlewareKind::Sge,
    MiddlewareKind::Pbs,
    MiddlewareKind::Globus,
    MiddlewareKind::Zorilla,
];

/// Pick the first middleware in `preference` that the resource supports.
/// An empty preference list uses [`DEFAULT_PREFERENCE`].
pub fn select_adapter(
    supported: &[MiddlewareKind],
    preference: &[MiddlewareKind],
) -> Result<MiddlewareKind, AdapterError> {
    let order: &[MiddlewareKind] =
        if preference.is_empty() { &DEFAULT_PREFERENCE } else { preference };
    order.iter().copied().find(|k| supported.contains(k)).ok_or(AdapterError::NoAdapter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_respects_preference_order() {
        let supported = [MiddlewareKind::Pbs, MiddlewareKind::Ssh];
        assert_eq!(select_adapter(&supported, &[]), Ok(MiddlewareKind::Ssh));
        assert_eq!(
            select_adapter(&supported, &[MiddlewareKind::Pbs, MiddlewareKind::Ssh]),
            Ok(MiddlewareKind::Pbs)
        );
    }

    #[test]
    fn no_adapter_error() {
        assert_eq!(
            select_adapter(&[MiddlewareKind::Globus], &[MiddlewareKind::Ssh]),
            Err(AdapterError::NoAdapter)
        );
    }

    #[test]
    fn overheads_ordered_sanely() {
        assert!(MiddlewareKind::Ssh.submit_overhead() < MiddlewareKind::Sge.submit_overhead());
        assert!(MiddlewareKind::Pbs.submit_overhead() < MiddlewareKind::Globus.submit_overhead());
    }

    #[test]
    fn batch_queue_usage() {
        assert!(MiddlewareKind::Pbs.uses_batch_queue());
        assert!(!MiddlewareKind::Ssh.uses_batch_queue());
        assert!(!MiddlewareKind::Zorilla.uses_batch_queue());
    }
}
