//! Integration tests for JavaGAT-over-the-jungle: submission, queueing,
//! staging, cancellation, and the reservation-expiry fault.

use jc_gat::broker::{CancelRequest, ProcExit, ProcStart, SubmitRequest};
use jc_gat::{select_adapter, GatEvent, GatRealm, JobDescription, JobState, MiddlewareKind};
use jc_netsim::compute::{CpuSpec, Device};
use jc_netsim::topology::HostSpec;
use jc_netsim::{
    Actor, ActorId, Ctx, FirewallPolicy, HostId, Msg, Sim, SimConfig, SimDuration, Topology,
};
use std::cell::RefCell;
use std::rc::Rc;

type Events = Rc<RefCell<Vec<(u64, JobState, String)>>>;

/// A worker process: the first ProcStart triggers compute; we re-deliver
/// the same ProcStart as the completion timer, then report exit.
struct Worker {
    computed: bool,
    flops: f64,
}

impl Actor for Worker {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if let Ok((_, start)) = msg.downcast::<ProcStart>() {
            if !self.computed {
                self.computed = true;
                let d = ctx.compute(&Device::Cpu { threads: 1 }, self.flops, 0);
                ctx.schedule_self(d, start);
            } else {
                ctx.send_net(
                    start.broker,
                    64,
                    jc_netsim::metrics::TrafficClass::Control,
                    ProcExit { job: start.job, rank: start.rank },
                );
            }
        }
    }
    fn name(&self) -> String {
        "worker".into()
    }
}

/// A never-exiting worker (like an AMUSE model worker).
struct Daemonic;
impl Actor for Daemonic {
    fn handle(&mut self, _ctx: &mut Ctx<'_>, _msg: Msg) {}
}

/// The submitting client: fires one SubmitRequest on start and records all
/// GatEvents.
struct Client {
    broker: ActorId,
    desc: Option<JobDescription>,
    adapter: MiddlewareKind,
    job_id: u64,
    events: Events,
    cancel_after: Option<SimDuration>,
}

impl Actor for Client {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let desc = self.desc.take().expect("one submission");
        let stage = desc.stage_in_bytes;
        ctx.send_net(
            self.broker,
            stage + 512,
            jc_netsim::metrics::TrafficClass::Staging,
            SubmitRequest {
                job: jc_gat::GatJobId(self.job_id),
                desc,
                reply_to: ctx.id(),
                adapter: self.adapter,
            },
        );
        if let Some(after) = self.cancel_after {
            ctx.schedule_self(after, CancelRequest(jc_gat::GatJobId(self.job_id)));
        }
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<GatEvent>() {
            Ok((_, ev)) => {
                self.events.borrow_mut().push((ev.job.0, ev.state, ev.detail));
                return;
            }
            Err(m) => m,
        };
        if let Ok((_, c)) = msg.downcast::<CancelRequest>() {
            ctx.send_net(self.broker, 64, jc_netsim::metrics::TrafficClass::Control, c);
        }
    }
    fn name(&self) -> String {
        "client".into()
    }
}

struct World {
    sim: Sim,
    realm: GatRealm,
    client_host: HostId,
}

fn build_world(cluster_nodes: usize) -> World {
    let mut t = Topology::new();
    let home = t.add_site("home", "desk", FirewallPolicy::Open);
    let cluster = t.add_site("cluster", "Amsterdam", FirewallPolicy::Open);
    t.add_link(home, cluster, SimDuration::from_millis(5), 1.0, "wan");
    let client_host = t.add_host(HostSpec::node("laptop", home, CpuSpec::generic()));
    let head = t.add_host(HostSpec::node("fs0", cluster, CpuSpec::generic()).as_front_end());
    let nodes: Vec<HostId> = (0..cluster_nodes)
        .map(|i| t.add_host(HostSpec::node(format!("node{i:03}"), cluster, CpuSpec::generic())))
        .collect();
    let mut sim = Sim::new(t, SimConfig::default());
    let mut realm = GatRealm::new();
    realm.install(
        &mut sim,
        "DAS-4 (VU)",
        cluster,
        head,
        nodes,
        vec![MiddlewareKind::Pbs, MiddlewareKind::Ssh],
    );
    World { sim, realm, client_host }
}

fn worker_factory() -> impl FnMut(u32, u32, HostId) -> Box<dyn Actor> {
    |_r, _t, _h| Box::new(Worker { computed: false, flops: 2.0e9 })
}

fn states(events: &Events) -> Vec<JobState> {
    events.borrow().iter().map(|(_, s, _)| *s).collect()
}

#[test]
fn pbs_job_runs_through_full_lifecycle() {
    let mut w = build_world(4);
    let events: Events = Default::default();
    let broker = w.realm.resource("DAS-4 (VU)").unwrap().broker;
    let mut desc = JobDescription::simple("phigrape", worker_factory());
    desc.nodes = 2;
    desc.processes_per_node = 1;
    desc.stage_in_bytes = 1 << 20;
    desc.stage_out_bytes = 1 << 18;
    let client = Client {
        broker,
        desc: Some(desc),
        adapter: MiddlewareKind::Pbs,
        job_id: 1,
        events: events.clone(),
        cancel_after: None,
    };
    w.sim.add_actor(w.client_host, Box::new(client));
    w.sim.run_to_quiescence(1_000_000);
    let s = states(&events);
    assert_eq!(
        s,
        vec![
            JobState::PreStaging,
            JobState::Scheduled,
            JobState::Running,
            JobState::PostStaging,
            JobState::Stopped
        ],
        "full PBS lifecycle: {s:?}"
    );
    // PBS overhead (2 s) + compute (1 s) must be reflected in virtual time.
    assert!(w.sim.now().as_secs_f64() > 3.0);
}

#[test]
fn ssh_job_skips_queue() {
    let mut w = build_world(2);
    let events: Events = Default::default();
    let broker = w.realm.resource("DAS-4 (VU)").unwrap().broker;
    let client = Client {
        broker,
        desc: Some(JobDescription::simple("sse", worker_factory())),
        adapter: MiddlewareKind::Ssh,
        job_id: 2,
        events: events.clone(),
        cancel_after: None,
    };
    w.sim.add_actor(w.client_host, Box::new(client));
    w.sim.run_to_quiescence(1_000_000);
    let s = states(&events);
    assert_eq!(s, vec![JobState::PreStaging, JobState::Running, JobState::Stopped]);
    assert!(w.sim.now().as_secs_f64() < 2.0, "ssh path is fast: {}", w.sim.now());
}

#[test]
fn oversized_job_is_rejected() {
    let mut w = build_world(2);
    let events: Events = Default::default();
    let broker = w.realm.resource("DAS-4 (VU)").unwrap().broker;
    let mut desc = JobDescription::simple("gadget", worker_factory());
    desc.nodes = 16;
    let client = Client {
        broker,
        desc: Some(desc),
        adapter: MiddlewareKind::Pbs,
        job_id: 3,
        events: events.clone(),
        cancel_after: None,
    };
    w.sim.add_actor(w.client_host, Box::new(client));
    w.sim.run_to_quiescence(1_000_000);
    let ev = events.borrow();
    assert_eq!(ev.len(), 1);
    assert_eq!(ev[0].1, JobState::SubmissionError);
    assert!(ev[0].2.contains("16 nodes"));
}

#[test]
fn reservation_expiry_kills_long_job() {
    let mut w = build_world(2);
    let events: Events = Default::default();
    let broker = w.realm.resource("DAS-4 (VU)").unwrap().broker;
    let mut desc = JobDescription::simple("amuse-worker", |_r, _t, _h| Box::new(Daemonic));
    desc.walltime = Some(SimDuration::from_secs(30));
    let client = Client {
        broker,
        desc: Some(desc),
        adapter: MiddlewareKind::Pbs,
        job_id: 4,
        events: events.clone(),
        cancel_after: None,
    };
    w.sim.add_actor(w.client_host, Box::new(client));
    w.sim.run_to_quiescence(1_000_000);
    let s = states(&events);
    assert_eq!(
        s,
        vec![JobState::PreStaging, JobState::Scheduled, JobState::Running, JobState::Killed],
        "{s:?}"
    );
    let detail = &events.borrow().last().unwrap().2.clone();
    assert!(detail.contains("reservation expired"), "{detail}");
    // killed right around the 30 s walltime (plus overheads)
    let t = w.sim.now().as_secs_f64();
    assert!((30.0..35.0).contains(&t), "kill time {t}");
}

#[test]
fn user_cancel_kills_running_job() {
    let mut w = build_world(2);
    let events: Events = Default::default();
    let broker = w.realm.resource("DAS-4 (VU)").unwrap().broker;
    let client = Client {
        broker,
        desc: Some(JobDescription::simple("amuse-worker", |_r, _t, _h| Box::new(Daemonic))),
        adapter: MiddlewareKind::Ssh,
        job_id: 5,
        events: events.clone(),
        cancel_after: Some(SimDuration::from_secs(3)),
    };
    w.sim.add_actor(w.client_host, Box::new(client));
    w.sim.run_to_quiescence(1_000_000);
    let s = states(&events);
    assert_eq!(s, vec![JobState::PreStaging, JobState::Running, JobState::Killed]);
    assert!(events.borrow().last().unwrap().2.contains("cancelled"));
}

#[test]
fn fifo_queueing_delays_second_job() {
    let mut w = build_world(2);
    let ev_a: Events = Default::default();
    let ev_b: Events = Default::default();
    let broker = w.realm.resource("DAS-4 (VU)").unwrap().broker;
    let mut desc_a = JobDescription::simple("first", worker_factory());
    desc_a.nodes = 2;
    let mut desc_b = JobDescription::simple("second", worker_factory());
    desc_b.nodes = 2;
    w.sim.add_actor(
        w.client_host,
        Box::new(Client {
            broker,
            desc: Some(desc_a),
            adapter: MiddlewareKind::Pbs,
            job_id: 10,
            events: ev_a.clone(),
            cancel_after: None,
        }),
    );
    w.sim.add_actor(
        w.client_host,
        Box::new(Client {
            broker,
            desc: Some(desc_b),
            adapter: MiddlewareKind::Pbs,
            job_id: 11,
            events: ev_b.clone(),
            cancel_after: None,
        }),
    );
    w.sim.run_to_quiescence(1_000_000);
    assert_eq!(states(&ev_a).last(), Some(&JobState::Stopped));
    assert_eq!(states(&ev_b).last(), Some(&JobState::Stopped));
    // both jobs want the full machine: they must have run serially, so the
    // end time covers two 1 s computations plus overheads
    assert!(w.sim.now().as_secs_f64() > 4.0, "serial execution: {}", w.sim.now());
}

#[test]
fn adapter_selection_for_resource() {
    let w = build_world(1);
    let r = w.realm.resource("DAS-4 (VU)").unwrap();
    // default preference picks ssh over pbs
    assert_eq!(select_adapter(&r.supported, &[]), Ok(MiddlewareKind::Ssh));
    // explicit preference for batch
    assert_eq!(select_adapter(&r.supported, &[MiddlewareKind::Pbs]), Ok(MiddlewareKind::Pbs));
    assert_eq!(w.realm.names(), vec!["DAS-4 (VU)".to_string()]);
}
