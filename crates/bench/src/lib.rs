//! # jc-bench — the evaluation harness
//!
//! One binary per table/figure of the paper's evaluation (§6) plus
//! Criterion benches for the ablations. See DESIGN.md's experiment index:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1_lab_scenarios` | the §6.2 runtimes (353/89/84/62.4 s/iter) |
//! | `fig6_gas_expulsion` | the four evolution stages of Fig 6 |
//! | `fig7_bridge_trace` | the Fig 7 calling sequence |
//! | `fig9_sc11_demo` | the SC11 transatlantic run |
//! | `fig10_overlay_view` | the IbisDeploy resource/job/overlay panels |
//! | `fig11_traffic_view` | the traffic visualization (IPL vs MPI) |
//! | `loopback_bandwidth` | the §5 ">8 Gbit/s loopback" claim |
//! | bench `lab_scenarios` | wall-time of the modeled scenarios |
//! | bench `kernels` | multi-kernel ablation (CPU/GPU, Fi/Octgrav, N sweep) |
//! | bench `connectivity` | SmartSockets strategy ablation |
//! | bench `channel_overhead` | local vs thread vs distributed channel cost |
//! | bench `loopback` | loopback channel throughput |

#![deny(rustdoc::broken_intra_doc_links)]
#![deny(unreachable_pub)]

/// Render a simple two-column table.
pub fn kv_table(title: &str, rows: &[(String, String)]) -> String {
    let mut out = format!("{title}\n");
    let w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(8);
    for (k, v) in rows {
        out.push_str(&format!("  {k:<w$}  {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn kv_table_formats() {
        let t = super::kv_table("T", &[("a".into(), "1".into()), ("bb".into(), "2".into())]);
        assert!(t.contains("a   1") || t.contains("a  1"), "{t}");
    }
}
