//! Regenerates Fig 9: the SC11 transatlantic deployment and its traffic.

use jc_core::scenarios::run_sc11;
use jc_deploy::monitor::MonitorView;
use jc_netsim::SimDuration;

fn main() {
    let run = run_sc11(1);
    println!("SC11 worst case: coupler in Seattle, models in the Netherlands");
    println!(
        "iteration time {:.1} virtual s | WAN IPL {:.1} MiB | MPI {:.1} MiB | {:.0} calls\n",
        run.result.seconds_per_iteration,
        run.result.wan_ipl_bytes as f64 / (1 << 20) as f64,
        run.result.mpi_bytes as f64 / (1 << 20) as f64,
        run.result.calls_per_iteration
    );
    let mut sim = run.sim.borrow_mut();
    let now = sim.now();
    let (topo, metrics) = sim.monitor_parts();
    let mut view =
        MonitorView { topo, metrics, window: SimDuration::from_nanos(now.as_nanos().max(1)) };
    println!("{}", view.render_traffic());
}
