//! Regenerates Table 1: the four §6.2 lab scenarios on the Fig 12 grid.

use jc_core::scenarios::{format_table1, run_scenario};
use jc_core::Scenario;

fn main() {
    let results: Vec<_> = Scenario::all().into_iter().map(|s| run_scenario(s, 1).result).collect();
    println!("{}", format_table1(&results));
    for r in &results {
        println!(
            "  {:<38} WAN IPL {:>8.1} MiB, MPI {:>8.1} MiB, {} SNe",
            r.scenario.label(),
            r.wan_ipl_bytes as f64 / (1 << 20) as f64,
            r.mpi_bytes as f64 / (1 << 20) as f64,
            r.supernovae
        );
    }
}
