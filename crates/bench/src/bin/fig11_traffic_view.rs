//! Regenerates Fig 11: the 3D network-traffic visualization as a table —
//! IPL traffic (blue in the paper) vs intra-worker MPI traffic (orange),
//! plus the load/memory bars.

use jc_core::scenarios::run_sc11;
use jc_deploy::monitor::MonitorView;
use jc_netsim::SimDuration;

fn main() {
    let run = run_sc11(2);
    let mut sim = run.sim.borrow_mut();
    let now = sim.now();
    let (topo, metrics) = sim.monitor_parts();
    let mut view =
        MonitorView { topo, metrics, window: SimDuration::from_nanos(now.as_nanos().max(1)) };
    println!("{}", view.render_traffic());
    println!("(GPU-hosted models leave their CPUs nearly idle, matching the");
    println!(" paper's observation about the load bars)");
}
