//! Regenerates Fig 10: the IbisDeploy panels (resources, jobs, overlay).

use jc_core::scenarios::run_sc11;
use jc_deploy::monitor::MonitorView;
use jc_netsim::SimDuration;

fn main() {
    let run = run_sc11(1);
    let mut sim = run.sim.borrow_mut();
    let now = sim.now();
    let overlay_view = run.overlay.view(sim.topology());
    let (topo, metrics) = sim.monitor_parts();
    let mut view =
        MonitorView { topo, metrics, window: SimDuration::from_nanos(now.as_nanos().max(1)) };
    println!("{}", view.render_resource_map(&run.realm));
    println!("{}", view.render_jobs(&run.jobs));
    println!("{}", overlay_view.render());
    println!("(arrows = one-way connectivity; <=ssh=> = automatic ssh tunnel,");
    println!(" exactly the red lines / arrows legend of the IbisDeploy GUI)");
}
