//! Regenerates Fig 6: the embedded-cluster gas-expulsion time series.

use jc_amuse::channel::LocalChannel;
use jc_amuse::cluster::{bound_gas_fraction, half_mass_radius, EmbeddedCluster};
use jc_amuse::Bridge;

fn main() {
    let cluster = EmbeddedCluster::build(48, 192, 0.5, 39);
    let (g, h, c, s) = cluster.local_workers(false);
    let mut cfg = cluster.bridge_config();
    cfg.substeps = 8;
    cfg.stellar_interval = 1;
    let mut bridge = Bridge::new(
        Box::new(LocalChannel::new(g)),
        Box::new(LocalChannel::new(h)),
        Box::new(LocalChannel::new(c)),
        Some(Box::new(LocalChannel::new(s))),
        cfg,
    );
    println!(
        "{:>6} {:>9} {:>11} {:>10} {:>10} {:>5}",
        "iter", "t [Myr]", "bound gas", "r_h stars", "r_h gas", "SNe"
    );
    let mut sne = 0;
    for i in 0..24 {
        let rep = bridge.iteration();
        sne += rep.supernovae;
        let (stars, gas) = bridge.snapshots();
        let stage = match i {
            0 => "  <- (a) initial: stars embedded in gas",
            8 => "  <- (b) gas expanding",
            16 => "  <- (c) thin shell / supernovae",
            23 => "  <- (d) gas removed, cluster expanded",
            _ => "",
        };
        println!(
            "{:>6} {:>9.2} {:>10.1}% {:>10.3} {:>10.3} {:>5}{}",
            i + 1,
            rep.time * cluster.time_unit_myr,
            bound_gas_fraction(&stars, &gas) * 100.0,
            half_mass_radius(&stars),
            half_mass_radius(&gas),
            sne,
            stage
        );
    }
}
