//! Regenerates the §5 loopback claim: ">8 Gbit/second even on a modest
//! laptop, extremely small latency".

use jc_core::loopback::measure;

fn main() {
    println!("{:>10} {:>14} {:>12}", "msg size", "throughput", "rtt");
    for shift in [12u32, 16, 20, 24] {
        let r = measure(1usize << shift, 256, 200);
        println!(
            "{:>9}K {:>11.2} Gb/s {:>10.1} us",
            (1usize << shift) / 1024,
            r.gbit_per_s,
            r.rtt_us
        );
    }
    println!("\npaper claim: loopback socket > 8 Gbit/s with extremely small latency");
}
