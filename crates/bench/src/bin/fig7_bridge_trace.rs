//! Regenerates Fig 7: the calling sequence of the combined solver.

use jc_amuse::channel::LocalChannel;
use jc_amuse::cluster::EmbeddedCluster;
use jc_amuse::Bridge;

fn main() {
    let cluster = EmbeddedCluster::build(24, 96, 0.5, 3);
    let (g, h, c, s) = cluster.local_workers(false);
    let mut cfg = cluster.bridge_config();
    cfg.substeps = 2;
    cfg.stellar_interval = 1;
    cfg.trace = true;
    let mut bridge = Bridge::new(
        Box::new(LocalChannel::new(g)),
        Box::new(LocalChannel::new(h)),
        Box::new(LocalChannel::new(c)),
        Some(Box::new(LocalChannel::new(s))),
        cfg,
    );
    let rep = bridge.iteration();
    println!("one iteration of the combined gravitational/hydro/stellar solver:\n");
    for (i, line) in rep.trace.iter().enumerate() {
        println!("  {:>2}. {line}", i + 1);
    }
    println!("\n(circles in Fig 7 = model calls; the p-kicks run through the");
    println!(" coupling model; gas and gravity evolve in parallel; the stellar");
    println!(" exchange happens only every n-th step)");
    let (gs, hs, cs, ss) = bridge.channel_stats();
    println!(
        "\ncalls: gravity {}, hydro {}, coupling {}, stellar {}",
        gs.calls,
        hs.calls,
        cs.calls,
        ss.map(|x| x.calls).unwrap_or(0)
    );
}
