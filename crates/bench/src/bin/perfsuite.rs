//! perfsuite — the repo's machine-readable kernel performance baseline.
//!
//! Times every compute kernel the paper's Table 1 scenarios exercise
//! (direct-summation gravity, Hermite steps, Barnes–Hut tree walks, SPH
//! density and forces — plus the pre-refactor HashMap-grid density pass
//! as the fixed reference point) at several N on fixed seeds, and writes
//! the results as JSON so every perf PR leaves a trajectory point behind.
//!
//! ```text
//! perfsuite [--quick] [--socket] [--checkpoint] [--service] [--out PATH] [--check BASELINE] [--repeats K]
//! perfsuite --compare OLD.json NEW.json
//! ```
//!
//! * `--quick` — small-N subset (CI per-PR job)
//! * `--socket` — add transport-overhead rows: one bridge-style RPC
//!   round trip (snapshot + kick) per transport — in-process
//!   `LocalChannel`, blocking loopback-TCP `SocketChannel`
//!   (`*_socket_lockstep`), and the pipelined `ReactorChannel`
//!   (`*_socket`) — plus K=3 `ComputeKick` fan-out rows
//!   (`coupling_fanout_k3` pipelined vs `_lockstep`) — so the
//!   BENCH_*.json trajectory tracks what the wire costs on top of the
//!   kernel (`interactions_per_s` holds payload bytes/s for these rows)
//! * `--checkpoint` — add fault-tolerance overhead rows: serializing a
//!   full bridge checkpoint (`checkpoint_snapshot`: SaveState gather +
//!   container encode) and applying one (`checkpoint_restore`:
//!   LoadState scatter). `interactions_per_s` holds container bytes/s,
//!   so the trajectory tracks what a per-iteration checkpoint costs
//!   next to an iteration itself
//! * `--service` — add multi-session service rows:
//!   `service_session_p99` drives a burst of small sessions through the
//!   warm in-process pool (`ns_per_step` = p99 submit→complete latency,
//!   `interactions_per_s` = sessions/s), and `service_shed_rate` bursts
//!   4× a tiny queue bound to time the typed admission decision
//!   (`ns_per_step` = ns per submit, `interactions_per_s` = shed
//!   fraction). Both are scheduling/latency rows, so the gates report
//!   them without failing on them
//! * `--out` — output path (default `bench.json`; pass an explicit
//!   `BENCH_PRn.json` when recording a committed baseline)
//! * `--check` — compare against a committed baseline JSON and exit
//!   non-zero if any matching kernel regressed more than 2× in ns/step
//! * `--repeats` — timing repeats per kernel (default 3; best is kept)
//! * `--compare OLD.json NEW.json` — no benching: print a per-kernel
//!   speedup table between two result files (machine-normalized via the
//!   frozen `sph_density_legacy` rows) and exit non-zero if any kernel
//!   in NEW regressed more than 2× against OLD, **or** if NEW is
//!   missing a kernel name OLD has (rows present on only one side are
//!   named either way) — CI diffs the PR's JSON artifact against the
//!   committed baseline with this
//!
//! Every mode also records multi-thread scaling rows: the parallel
//! kernels re-run at `JC_THREADS` ∈ {1, 2, phys-cores} as
//! `<kernel>_t<T>` rows (largest N of the mode), plus a per-core
//! scaling-efficiency report — so each committed baseline pins the
//! worker-pool trajectory next to the single-thread one.
//!
//! Worker-thread counts honor the `JC_THREADS` environment override, so
//! perfsuite numbers are reproducible on shared machines (CI pins it).
//! Backend coverage: the scalar reference kernels keep their historical
//! row names (`nbody_acc_jerk`, `sph_density_csr`, `sph_forces`,
//! `tree_walk`); the SoA compute paths get `*_simd` rows next to them.
//! The former `tree_build_walk` row is split into `tree_build` and
//! `tree_walk` so an N-driven throughput drop can be attributed to the
//! octree build or to the walk.

use jc_nbody::kernels::{acc_jerk_into, Backend};
use jc_nbody::plummer::plummer_sphere;
use jc_nbody::PhiGrape;
use jc_sph::density::{compute_density_with, SphScratch};
use jc_sph::forces::{hydro_rates_into, HydroRates};
use jc_sph::particles::plummer_gas;
use jc_treegrav::TreeGravity;
use std::time::Instant;

/// Allowed slowdown versus the committed baseline before `--check` fails.
const REGRESSION_FACTOR: f64 = 2.0;

/// Rows dominated by syscall/loopback latency rather than CPU: the
/// CPU-bound calibration cannot normalize them across machines, so the
/// gates report them for the trajectory but never fail on them.
fn latency_bound(kernel: &str) -> bool {
    kernel.starts_with("channel_roundtrip")
        || kernel.starts_with("coupling_fanout")
        || kernel.starts_with("service_")
}

/// One measured point.
struct Sample {
    kernel: &'static str,
    n: usize,
    ns_per_step: f64,
    interactions_per_s: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--compare") {
        if args.len() != 3 {
            eprintln!("usage: perfsuite --compare OLD.json NEW.json");
            std::process::exit(2);
        }
        std::process::exit(compare_files(&args[1], &args[2]));
    }
    let mut quick = false;
    let mut socket = false;
    let mut checkpoint = false;
    let mut service = false;
    // not a committed BENCH_*.json: a bare run must never clobber a
    // checked-in baseline
    let mut out_path = String::from("bench.json");
    let mut check_path: Option<String> = None;
    let mut repeats = 3usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--socket" => socket = true,
            "--checkpoint" => checkpoint = true,
            "--service" => service = true,
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--check" => check_path = Some(it.next().expect("--check needs a path").clone()),
            "--repeats" => {
                repeats = it.next().and_then(|v| v.parse().ok()).expect("--repeats needs a count")
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: perfsuite [--quick] [--socket] [--checkpoint] [--service] \
                     [--out PATH] [--check BASELINE] [--repeats K]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut samples = Vec::new();
    let gravity_ns: &[usize] = if quick { &[256] } else { &[256, 1024, 4096] };
    let tree_ns: &[usize] = if quick { &[1024] } else { &[1024, 8192] };
    let sph_ns: &[usize] = if quick { &[1024] } else { &[1024, 8192] };

    for &n in gravity_ns {
        samples.push(bench_acc_jerk(n, repeats, Backend::Scalar));
        samples.push(bench_acc_jerk(n, repeats, Backend::SimdSoa));
        samples.push(bench_hermite(n, repeats));
    }
    for &n in tree_ns {
        samples.push(bench_tree_build(n, repeats));
        samples.push(bench_tree_walk(n, repeats, false));
        samples.push(bench_tree_walk(n, repeats, true));
    }
    for &n in sph_ns {
        samples.push(bench_sph_density(n, repeats, false));
        samples.push(bench_sph_density(n, repeats, true));
        samples.push(bench_sph_density_legacy(n, repeats));
        samples.push(bench_sph_forces(n, repeats, false));
        samples.push(bench_sph_forces(n, repeats, true));
    }
    if socket {
        let channel_ns: &[usize] = if quick { &[1024] } else { &[1024, 8192] };
        for &n in channel_ns {
            samples.push(bench_channel_roundtrip(n, repeats, Transport::Local));
            samples.push(bench_channel_roundtrip(n, repeats, Transport::SocketLockstep));
            samples.push(bench_channel_roundtrip(n, repeats, Transport::SocketPipelined));
        }
        // K=3 coupling fan-out at the smallest channel N, where transport
        // latency (not the tree kernel) dominates: the pipelined row
        // shows K round trips overlapping toward one.
        let n_fan = channel_ns[0];
        samples.push(bench_coupling_fanout(n_fan, repeats, 3, false));
        samples.push(bench_coupling_fanout(n_fan, repeats, 3, true));
    }
    if checkpoint {
        let ck_stars: &[usize] = if quick { &[1024] } else { &[1024, 8192] };
        for &n in ck_stars {
            samples.push(bench_checkpoint(n, repeats, false));
            samples.push(bench_checkpoint(n, repeats, true));
        }
    }
    if service {
        let sessions = if quick { 200 } else { 1000 };
        samples.push(bench_service_p99(sessions, repeats));
        samples.push(bench_service_shed(repeats));
    }

    // Multi-thread scaling rows (all modes): the parallel kernels at
    // JC_THREADS ∈ {1, 2, phys-cores}, each at the mode's largest N so
    // the grain policy cannot floor the worker count. `JC_THREADS` is
    // read per resolution (regression-tested at the workspace root), so
    // an in-process sweep measures what it labels; the ambient value is
    // restored before the provenance field is rendered.
    let phys = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let ambient_threads = std::env::var("JC_THREADS").ok();
    let mut sweep: Vec<usize> = vec![1, 2, phys];
    sweep.sort_unstable();
    sweep.dedup();
    let sweep_start = samples.len();
    let n_grav = *gravity_ns.last().unwrap();
    let n_tree = *tree_ns.last().unwrap();
    let n_sph = *sph_ns.last().unwrap();
    for &t in &sweep {
        std::env::set_var("JC_THREADS", t.to_string());
        let tag =
            |kernel: &str| -> &'static str { Box::leak(format!("{kernel}_t{t}").into_boxed_str()) };
        let s = bench_acc_jerk(n_grav, repeats, Backend::SimdSoa);
        samples.push(Sample { kernel: tag("nbody_acc_jerk_simd"), ..s });
        let s = bench_tree_walk(n_tree, repeats, true);
        samples.push(Sample { kernel: tag("tree_walk_simd"), ..s });
        let s = bench_sph_forces(n_sph, repeats, true);
        samples.push(Sample { kernel: tag("sph_forces_simd"), ..s });
    }
    match ambient_threads {
        Some(v) => std::env::set_var("JC_THREADS", v),
        None => std::env::remove_var("JC_THREADS"),
    }
    report_scaling(&samples[sweep_start..], &sweep);

    for s in &samples {
        println!(
            "{:<24} N={:<6} {:>14.0} ns/step  {:>14.3e} inter/s",
            s.kernel, s.n, s.ns_per_step, s.interactions_per_s
        );
    }
    report_speedup(&samples);
    report_transport_overhead(&samples);

    let json = render_json(&samples, quick);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");

    if let Some(baseline) = check_path {
        std::process::exit(check_against(&samples, &baseline));
    }
}

/// Print thread-scaling speedup and per-core efficiency for the
/// `<kernel>_t<T>` sweep rows (`efficiency = t1_ns / (T * tT_ns)`; 1.0
/// is perfect scaling, anything under ~0.7 on real cores points at a
/// serial section or pool overhead).
fn report_scaling(sweep_rows: &[Sample], sweep: &[usize]) {
    for kernel in ["nbody_acc_jerk_simd", "tree_walk_simd", "sph_forces_simd"] {
        let at = |t: usize| -> Option<f64> {
            let name = format!("{kernel}_t{t}");
            sweep_rows.iter().find(|s| s.kernel == name).map(|s| s.ns_per_step)
        };
        let Some(base) = at(1) else { continue };
        for &t in sweep.iter().filter(|&&t| t > 1) {
            if let Some(ns) = at(t) {
                let speedup = base / ns;
                println!(
                    "{kernel} at {t} threads: {speedup:.2}x over 1 thread, \
                     per-core efficiency {:.2}",
                    speedup / t as f64
                );
            }
        }
    }
}

/// Print the CSR-vs-legacy SPH density speedup and the SoA-vs-scalar
/// speedup of every kernel that has both rows.
fn report_speedup(samples: &[Sample]) {
    for s in samples.iter().filter(|s| s.kernel == "sph_density_csr") {
        if let Some(legacy) =
            samples.iter().find(|l| l.kernel == "sph_density_legacy" && l.n == s.n)
        {
            println!(
                "sph density speedup vs legacy grid at N={}: {:.2}x",
                s.n,
                legacy.ns_per_step / s.ns_per_step
            );
        }
    }
    for (simd, scalar) in [
        ("nbody_acc_jerk_simd", "nbody_acc_jerk"),
        ("sph_density_simd", "sph_density_csr"),
        ("sph_forces_simd", "sph_forces"),
        ("tree_walk_simd", "tree_walk"),
    ] {
        for s in samples.iter().filter(|s| s.kernel == simd) {
            if let Some(base) = samples.iter().find(|l| l.kernel == scalar && l.n == s.n) {
                println!(
                    "{scalar} SimdSoa speedup at N={}: {:.2}x",
                    s.n,
                    base.ns_per_step / s.ns_per_step
                );
            }
        }
    }
}

/// Best-of-`repeats` wall time of `f`, in ns, after one warmup run.
fn best_ns(repeats: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup: grow scratch buffers, fault pages in
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e9);
    }
    best
}

fn bench_acc_jerk(n: usize, repeats: usize, backend: Backend) -> Sample {
    let ics = plummer_sphere(n, 42);
    let mut acc = vec![[0.0; 3]; n];
    let mut jerk = vec![[0.0; 3]; n];
    let ns = best_ns(repeats, || {
        acc_jerk_into(
            backend, &ics.pos, &ics.vel, &ics.mass, &ics.pos, &ics.vel, 1e-4, true, &mut acc,
            &mut jerk,
        );
    });
    let inter = (n * n) as f64;
    let kernel = match backend {
        Backend::SimdSoa => "nbody_acc_jerk_simd",
        _ => "nbody_acc_jerk",
    };
    Sample { kernel, n, ns_per_step: ns, interactions_per_s: inter / ns * 1e9 }
}

fn bench_hermite(n: usize, repeats: usize) -> Sample {
    // time a fixed-length evolve and normalize per Hermite step
    let mut g =
        PhiGrape::new(plummer_sphere(n, 7), Backend::Scalar).with_softening(0.01).with_eta(0.01);
    g.evolve_model(1e-4); // warm: forces + scratch
    let mut steps = 0u64;
    let mut t_end = g.model_time();
    let ns = best_ns(repeats, || {
        t_end += 0.002;
        steps += g.evolve_model(t_end);
    });
    // steps of the best repeat are not separable; use the mean cost
    let total = steps.max(1) as f64;
    let per_step = ns * (repeats as f64 + 1.0) / total.max(1.0);
    // one N² force evaluation per steady-state step (the predictor uses
    // the forces carried over from the previous step)
    let inter = (n * n) as f64;
    Sample {
        kernel: "hermite_step",
        n,
        ns_per_step: per_step,
        interactions_per_s: inter / per_step * 1e9,
    }
}

/// Octree build (+ per-node opening-radius precompute) alone — the
/// build half of the former `tree_build_walk` row. `interactions_per_s`
/// reports particles inserted per second.
fn bench_tree_build(n: usize, repeats: usize) -> Sample {
    let ics = plummer_sphere(n, 11);
    let mut solver = TreeGravity::new(0.5, 0.01);
    let ns = best_ns(repeats, || {
        solver.rebuild(&ics.pos, &ics.mass);
    });
    Sample { kernel: "tree_build", n, ns_per_step: ns, interactions_per_s: n as f64 / ns * 1e9 }
}

/// The Barnes–Hut walk against a prebuilt tree — the walk half of the
/// former `tree_build_walk` row, so an N-driven throughput drop can be
/// pinned on build or walk.
fn bench_tree_walk(n: usize, repeats: usize, simd: bool) -> Sample {
    let ics = plummer_sphere(n, 11);
    let mut solver = TreeGravity::new(0.5, 0.01);
    solver.simd = simd;
    solver.rebuild(&ics.pos, &ics.mass);
    let mut acc = Vec::new();
    let ns = best_ns(repeats, || {
        solver.walk_targets(&ics.pos, &mut acc);
    });
    let inter = solver.last_interactions() as f64;
    let kernel = if simd { "tree_walk_simd" } else { "tree_walk" };
    Sample { kernel, n, ns_per_step: ns, interactions_per_s: inter / ns * 1e9 }
}

fn bench_sph_density(n: usize, repeats: usize, simd: bool) -> Sample {
    let gas0 = plummer_gas(n, 1.0, 13);
    let mut scratch = SphScratch::new();
    scratch.simd = simd;
    let mut gas = gas0.clone();
    let mut inter = 0u64;
    let ns = best_ns(repeats, || {
        gas.h.copy_from_slice(&gas0.h); // identical adaptation work per run
        inter = compute_density_with(&mut gas, &mut scratch);
    });
    Sample {
        kernel: if simd { "sph_density_simd" } else { "sph_density_csr" },
        n,
        ns_per_step: ns,
        interactions_per_s: inter as f64 / ns * 1e9,
    }
}

fn bench_sph_density_legacy(n: usize, repeats: usize) -> Sample {
    let gas0 = plummer_gas(n, 1.0, 13);
    let mut gas = gas0.clone();
    let mut inter = 0u64;
    let ns = best_ns(repeats, || {
        gas.h.copy_from_slice(&gas0.h);
        inter = jc_sph::legacy::compute_density(&mut gas);
    });
    Sample {
        kernel: "sph_density_legacy",
        n,
        ns_per_step: ns,
        interactions_per_s: inter as f64 / ns * 1e9,
    }
}

fn bench_sph_forces(n: usize, repeats: usize, simd: bool) -> Sample {
    let mut gas = plummer_gas(n, 1.0, 13);
    let mut scratch = SphScratch::new();
    scratch.simd = simd;
    compute_density_with(&mut gas, &mut scratch);
    let mut rates = HydroRates::new();
    let ns = best_ns(repeats, || {
        hydro_rates_into(&gas, &mut scratch, &mut rates);
    });
    Sample {
        kernel: if simd { "sph_forces_simd" } else { "sph_forces" },
        n,
        ns_per_step: ns,
        interactions_per_s: rates.interactions as f64 / ns * 1e9,
    }
}

/// Which transport carries the channel round-trip rows.
#[derive(Clone, Copy)]
enum Transport {
    /// In-process `LocalChannel` — the zero-wire reference.
    Local,
    /// Blocking `SocketChannel`: one request in flight at a time, two
    /// full round trips per step (the pre-reactor transport).
    SocketLockstep,
    /// `ReactorChannel` with the snapshot and the kick submitted
    /// together — the event-driven coupler's production path, one
    /// coalesced write and one gather per step.
    SocketPipelined,
}

/// One bridge-style RPC round trip — a full particle snapshot plus a
/// kick — over an in-process channel, a blocking loopback TCP socket,
/// or the pipelined reactor. The same worker, the same payloads: the
/// difference between the rows is pure transport (encode + syscalls +
/// wire + decode, and for the reactor row how many syscall round trips
/// the step costs). `interactions_per_s` reports payload bytes/s for
/// these rows.
fn bench_channel_roundtrip(n: usize, repeats: usize, transport: Transport) -> Sample {
    use jc_amuse::channel::{Channel, LocalChannel};
    use jc_amuse::worker::{GravityWorker, ParticleData, Request, Response};
    use jc_amuse::{Reactor, ReactorChannel, SocketChannel};
    use jc_nbody::Backend;

    let ics = plummer_sphere(n, 21);
    let mut snap = ParticleData::default();
    let dv = vec![[0.0; 3]; n];
    let bytes_per_step =
        (Request::GetParticles.wire_size() + 32 + 56 * n as u64) + (24 * n as u64 + 32 + 40); // snapshot req+resp, kick req+resp
    let kernel = match transport {
        Transport::Local => "channel_roundtrip_local",
        Transport::SocketLockstep => "channel_roundtrip_socket_lockstep",
        Transport::SocketPipelined => "channel_roundtrip_socket",
    };
    let sample = |ns: f64| Sample {
        kernel,
        n,
        ns_per_step: ns,
        interactions_per_s: bytes_per_step as f64 / ns * 1e9,
    };

    match transport {
        Transport::Local => {
            let mut ch = LocalChannel::new(Box::new(GravityWorker::new(ics, Backend::Scalar)));
            let ns = best_ns(repeats, || {
                assert!(ch.snapshot_into(&mut snap));
                assert!(matches!(ch.kick_slice(&dv), Response::Ok { .. }));
            });
            sample(ns)
        }
        Transport::SocketLockstep => {
            let (addr, handle) = jc_amuse::spawn_tcp_worker("perf-grav", move || {
                GravityWorker::new(ics, Backend::Scalar)
            });
            let mut ch =
                SocketChannel::connect(addr, "perf-grav").expect("connect loopback worker");
            let ns = best_ns(repeats, || {
                assert!(ch.snapshot_into(&mut snap));
                assert!(matches!(ch.kick_slice(&dv), Response::Ok { .. }));
            });
            drop(ch); // sends Stop
            let _ = handle.join();
            sample(ns)
        }
        Transport::SocketPipelined => {
            let (addr, handle) = jc_amuse::spawn_tcp_worker("perf-grav", move || {
                GravityWorker::new(ics, Backend::Scalar)
            });
            let reactor = Reactor::new_shared().expect("reactor");
            let mut ch = ReactorChannel::connect(&reactor, addr, "perf-grav")
                .expect("connect loopback worker");
            let ns = best_ns(repeats, || {
                // Both requests leave in one coalesced write; the kick
                // does not depend on the snapshot, so this depth-2 is
                // exactly what the bridge issues.
                ch.submit_snapshot();
                ch.submit_kick_slice(&dv);
                assert!(ch.collect_snapshot_into(&mut snap));
                assert!(matches!(ch.collect_kick(), Response::Ok { .. }));
            });
            drop(ch); // sends Stop
            let _ = handle.join();
            sample(ns)
        }
    }
}

/// K-shard `ComputeKick` scatter–gather over loopback TCP workers:
/// pipelined (all K requests in flight at once through the reactor)
/// versus lock-step (K blocking round trips, one after another). The
/// gap between the two rows is the latency overlap the event-driven
/// coupler buys on the coupling fan-out. `interactions_per_s` reports
/// wire bytes/s measured from the pool's own channel accounting.
fn bench_coupling_fanout(n: usize, repeats: usize, k: usize, lockstep: bool) -> Sample {
    use jc_amuse::channel::Channel;
    use jc_amuse::shard::ShardedChannel;
    use jc_amuse::worker::CouplingWorker;
    use jc_amuse::{Reactor, ReactorChannel};

    let scene = plummer_sphere(n, 23);
    let reactor = Reactor::new_shared().expect("reactor");
    let mut handles = Vec::new();
    let shards: Vec<Box<dyn Channel>> = (0..k)
        .map(|i| {
            let (addr, h) = jc_amuse::spawn_tcp_worker(format!("fi-{i}"), CouplingWorker::fi);
            handles.push(h);
            Box::new(
                ReactorChannel::connect(&reactor, addr, format!("fi-{i}"))
                    .expect("connect loopback shard"),
            ) as Box<dyn Channel>
        })
        .collect();
    let mut pool = ShardedChannel::with_counts(shards, vec![0; k]).with_lockstep(lockstep);
    assert_eq!(pool.pipelined(), !lockstep);

    let mut acc = Vec::new();
    let before = pool.stats();
    let flops = pool
        .compute_kick_into(&scene.pos, &scene.pos, &scene.mass, &mut acc)
        .expect("fan-out compute_kick");
    assert!(flops > 0.0);
    let st = pool.stats();
    let bytes_per_step = (st.bytes_out - before.bytes_out) + (st.bytes_in - before.bytes_in);

    let ns = best_ns(repeats, || {
        pool.compute_kick_into(&scene.pos, &scene.pos, &scene.mass, &mut acc)
            .expect("fan-out compute_kick");
    });
    drop(pool); // sends Stop to every shard
    for h in handles {
        let _ = h.join();
    }
    let suffix = if lockstep { "_lockstep" } else { "" };
    Sample {
        kernel: Box::leak(format!("coupling_fanout_k{k}{suffix}").into_boxed_str()),
        n,
        ns_per_step: ns,
        interactions_per_s: bytes_per_step as f64 / ns * 1e9,
    }
}

/// Fault-tolerance overhead: serialize (`restore == false`) or apply
/// (`restore == true`) a complete bridge checkpoint over in-process
/// channels — SaveState gather + container encode versus LoadState
/// scatter. `n_stars` stars plus 4·n gas; `interactions_per_s` reports
/// container bytes/s.
fn bench_checkpoint(n_stars: usize, repeats: usize, restore: bool) -> Sample {
    use jc_amuse::channel::LocalChannel;
    use jc_amuse::worker::{CouplingWorker, GravityWorker, HydroWorker, StellarWorker};
    use jc_amuse::{Bridge, EmbeddedCluster};
    use jc_nbody::Backend;

    let c = EmbeddedCluster::build(n_stars, 4 * n_stars, 0.5, 29);
    let mut bridge = Bridge::new(
        Box::new(LocalChannel::new(Box::new(GravityWorker::new(c.stars.clone(), Backend::Scalar)))),
        Box::new(LocalChannel::new(Box::new(HydroWorker::new(c.gas.clone())))),
        Box::new(LocalChannel::new(Box::new(CouplingWorker::fi()))),
        Some(Box::new(LocalChannel::new(Box::new(StellarWorker::new(
            c.star_masses_msun.clone(),
            0.02,
        ))))),
        c.bridge_config(),
    );
    let reference = bridge.snapshot().expect("snapshot");
    let mut container = Vec::new();
    reference.write_to(&mut container).expect("encode container");
    let bytes = container.len() as f64;

    let ns = if restore {
        best_ns(repeats, || {
            bridge.restore(&reference).expect("restore");
        })
    } else {
        best_ns(repeats, || {
            let ck = bridge.snapshot().expect("snapshot");
            container.clear();
            ck.write_to(&mut container).expect("encode container");
        })
    };
    Sample {
        kernel: if restore { "checkpoint_restore" } else { "checkpoint_snapshot" },
        n: n_stars,
        ns_per_step: ns,
        interactions_per_s: bytes / ns * 1e9,
    }
}

/// `--service`: p99 submit→complete latency for a burst of small
/// sessions through the warm in-process pool. `n` is the session count,
/// `ns_per_step` the best (lowest) p99 across repeats, and
/// `interactions_per_s` the session throughput of that repeat.
fn bench_service_p99(sessions: usize, repeats: usize) -> Sample {
    use jc_service::{QuotaPolicy, Service, ServiceConfig, SessionSpec, SessionStatus};

    let mut best_p99_ns = f64::INFINITY;
    let mut best_rate = 0.0f64;
    for _ in 0..repeats.max(1) {
        let service = Service::new(ServiceConfig {
            pool_size: 2,
            quota: QuotaPolicy { max_queue_depth: sessions, per_tenant_in_flight: sessions },
            ..ServiceConfig::default()
        });
        let t0 = Instant::now();
        let ids: Vec<_> = (0..sessions)
            .map(|i| {
                let spec = SessionSpec {
                    stars: 8,
                    gas: 24,
                    seed: 1 + i as u64,
                    iterations: 2,
                    substeps: 1,
                    ..SessionSpec::default()
                };
                service.submit(&format!("tenant-{}", i % 4), spec).expect("admitted")
            })
            .collect();
        let mut wall_ms: Vec<u64> = ids
            .iter()
            .map(|id| match service.wait(*id) {
                Some(SessionStatus::Completed { wall_ms, .. }) => wall_ms,
                other => panic!("service bench session failed: {other:?}"),
            })
            .collect();
        let elapsed = t0.elapsed().as_secs_f64();
        service.shutdown();
        wall_ms.sort_unstable();
        let p99 = wall_ms[((wall_ms.len() - 1) as f64 * 0.99).round() as usize] as f64 * 1e6;
        if p99 < best_p99_ns {
            best_p99_ns = p99;
            best_rate = sessions as f64 / elapsed;
        }
    }
    Sample {
        kernel: "service_session_p99",
        n: sessions,
        ns_per_step: best_p99_ns,
        interactions_per_s: best_rate,
    }
}

/// `--service`: the typed admission decision under overload. A burst of
/// 4× a tiny queue bound hits one slow host; `ns_per_step` is the mean
/// cost of one `submit()` (admit or shed — never block),
/// `interactions_per_s` the shed fraction of the burst.
fn bench_service_shed(repeats: usize) -> Sample {
    use jc_service::{QuotaPolicy, Service, ServiceConfig, SessionSpec, SubmitError};

    const DEPTH: usize = 16;
    const BURST: usize = 4 * DEPTH;
    let mut best_ns = f64::INFINITY;
    let mut best_shed = 0.0f64;
    for _ in 0..repeats.max(1) {
        let service = Service::new(ServiceConfig {
            pool_size: 1,
            quota: QuotaPolicy { max_queue_depth: DEPTH, per_tenant_in_flight: BURST },
            ..ServiceConfig::default()
        });
        let spec = SessionSpec {
            stars: 16,
            gas: 64,
            iterations: 4,
            substeps: 2,
            ..SessionSpec::default()
        };
        let mut shed = 0usize;
        let t0 = Instant::now();
        let mut ids = Vec::with_capacity(BURST);
        for _ in 0..BURST {
            match service.submit("burst", spec.clone()) {
                Ok(id) => ids.push(id),
                Err(SubmitError::Overloaded { .. }) => shed += 1,
                Err(e) => panic!("unexpected rejection: {e}"),
            }
        }
        let ns = t0.elapsed().as_nanos() as f64 / BURST as f64;
        for id in ids {
            service.wait(id);
        }
        service.shutdown();
        if ns < best_ns {
            best_ns = ns;
            best_shed = shed as f64 / BURST as f64;
        }
    }
    Sample {
        kernel: "service_shed_rate",
        n: BURST,
        ns_per_step: best_ns,
        interactions_per_s: best_shed,
    }
}

/// Print the socket-vs-local transport overhead per N (for both socket
/// transports), plus the pipelined-vs-lock-step gap on the K=3
/// coupling fan-out.
fn report_transport_overhead(samples: &[Sample]) {
    let find = |kernel: &str, n: usize| {
        samples.iter().find(move |l| l.kernel == kernel && l.n == n).map(|l| l.ns_per_step)
    };
    for s in samples.iter().filter(|s| {
        s.kernel == "channel_roundtrip_socket" || s.kernel == "channel_roundtrip_socket_lockstep"
    }) {
        if let Some(local) = find("channel_roundtrip_local", s.n) {
            let label =
                if s.kernel.ends_with("_lockstep") { "blocking socket" } else { "reactor socket" };
            println!(
                "{label} transport overhead at N={}: {:.2}x local round trip ({:.1} MB/s payload)",
                s.n,
                s.ns_per_step / local,
                s.interactions_per_s / 1e6
            );
        }
    }
    for s in samples
        .iter()
        .filter(|s| s.kernel.starts_with("coupling_fanout") && !s.kernel.ends_with("_lockstep"))
    {
        if let Some(lockstep) = find(&format!("{}_lockstep", s.kernel), s.n) {
            println!(
                "{} at N={}: pipelined fan-out {:.2}x faster than lock-step \
                 ({:.0} ns vs {:.0} ns per kick)",
                s.kernel,
                s.n,
                lockstep / s.ns_per_step,
                s.ns_per_step,
                lockstep
            );
        }
    }
}

fn render_json(samples: &[Sample], quick: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"jc-perfsuite/v1\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    // provenance: the worker-count pin this run was recorded under —
    // comparing runs with mismatched concurrency gates on the machine's
    // core count, which the calibration cannot normalize
    let threads = std::env::var("JC_THREADS").unwrap_or_else(|_| "auto".into());
    s.push_str(&format!("  \"jc_threads\": \"{threads}\",\n"));
    s.push_str(&format!("  \"regression_factor\": {REGRESSION_FACTOR},\n  \"results\": [\n"));
    for (i, r) in samples.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"n\": {}, \"ns_per_step\": {:.1}, \"interactions_per_s\": {:.1}}}{}\n",
            r.kernel,
            r.n,
            r.ns_per_step,
            r.interactions_per_s,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Machine-speed calibration: `sph_density_legacy` is frozen reference
/// code that no PR can change, so its current/baseline timing ratio
/// (geometric mean over matching N) measures how fast this machine is
/// relative to the one that recorded the baseline. Dividing every
/// kernel's factor by it makes the 2× gate compare code, not machines.
fn machine_calibration(samples: &[Sample], baseline: &jc_deploy::json::Value) -> f64 {
    let Some(results) = baseline.get("results").and_then(|r| r.as_array()) else {
        return 1.0;
    };
    let mut log_sum = 0.0;
    let mut count = 0u32;
    for s in samples.iter().filter(|s| s.kernel == "sph_density_legacy") {
        let base = results.iter().find(|r| {
            r.get("kernel").and_then(|k| k.as_str()) == Some(s.kernel)
                && r.get("n").and_then(|n| n.as_f64()) == Some(s.n as f64)
        });
        if let Some(base_ns) = base.and_then(|b| b.get("ns_per_step")).and_then(|v| v.as_f64()) {
            if base_ns > 0.0 && s.ns_per_step > 0.0 {
                log_sum += (s.ns_per_step / base_ns).ln();
                count += 1;
            }
        }
    }
    if count == 0 {
        1.0
    } else {
        // In --quick runs the calibration rests on a single legacy
        // measurement; clamp it so one noisy sample on a shared runner
        // cannot rescale every kernel into a spurious pass or fail.
        (log_sum / count as f64).exp().clamp(0.5, 2.0)
    }
}

/// One `(kernel, n, ns_per_step)` row pulled out of a results JSON.
type Row = (String, f64, f64);

fn load_rows(path: &str) -> Result<Vec<Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = jc_deploy::json::parse(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))?;
    let results = doc
        .get("results")
        .and_then(|r| r.as_array())
        .ok_or_else(|| format!("{path} has no results array"))?;
    let mut rows = Vec::new();
    for r in results {
        let (Some(kernel), Some(n), Some(ns)) = (
            r.get("kernel").and_then(|k| k.as_str()),
            r.get("n").and_then(|n| n.as_f64()),
            r.get("ns_per_step").and_then(|v| v.as_f64()),
        ) else {
            continue;
        };
        rows.push((kernel.to_string(), n, ns));
    }
    Ok(rows)
}

/// `perfsuite --compare OLD.json NEW.json`: print a per-kernel speedup
/// table between two result files and return the exit code — non-zero
/// when any kernel in NEW regressed more than [`REGRESSION_FACTOR`]×
/// against OLD after machine normalization (the frozen
/// `sph_density_legacy` rows measure the machine, exactly as in
/// `--check`). The calibration kernel and the latency-bound
/// `channel_roundtrip_*` rows are reported for information only.
fn compare_files(old_path: &str, new_path: &str) -> i32 {
    let (old, new) = match (load_rows(old_path), load_rows(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let find = |rows: &[Row], kernel: &str, n: f64| -> Option<f64> {
        rows.iter().find(|(k, rn, _)| k == kernel && *rn == n).map(|&(_, _, ns)| ns)
    };
    // machine calibration: geometric mean of new/old over the frozen
    // legacy rows, clamped against single-sample noise
    let mut log_sum = 0.0;
    let mut count = 0u32;
    for (k, n, new_ns) in new.iter().filter(|(k, _, _)| k == "sph_density_legacy") {
        if let Some(old_ns) = find(&old, k, *n) {
            if old_ns > 0.0 && *new_ns > 0.0 {
                log_sum += (new_ns / old_ns).ln();
                count += 1;
            }
        }
    }
    let calibration = if count == 0 { 1.0 } else { (log_sum / count as f64).exp().clamp(0.5, 2.0) };
    println!("comparing {new_path} against {old_path}");
    println!("machine calibration (sph_density_legacy new/old): {calibration:.2}x");
    println!(
        "{:<24} {:>8} {:>14} {:>14} {:>9}",
        "kernel", "N", "old ns/step", "new ns/step", "speedup"
    );
    // Coverage diff before any ratio math: a silently vanished row is
    // how a perf regression escapes a ratio gate. Rows present on only
    // one side are named; a kernel NAME the baseline has but NEW lacks
    // entirely fails the comparison (N-grids may differ between quick
    // and full runs, so only the name is load-bearing).
    for (k, n, _) in old.iter().filter(|(k, n, _)| find(&new, k, *n).is_none()) {
        println!("dropped from {new_path}: {k} N={n} (present in {old_path})");
    }
    for (k, n, _) in new.iter().filter(|(k, n, _)| find(&old, k, *n).is_none()) {
        println!("new in {new_path}: {k} N={n} (absent from {old_path})");
    }
    let names = |rows: &[Row]| -> std::collections::BTreeSet<String> {
        rows.iter().map(|(k, _, _)| k.clone()).collect()
    };
    let missing: Vec<String> = names(&old).difference(&names(&new)).cloned().collect();
    if !missing.is_empty() {
        eprintln!(
            "{new_path} is missing {} kernel(s) the baseline has: {}",
            missing.len(),
            missing.join(", ")
        );
        return 1;
    }
    let mut compared = 0;
    let mut failed = 0;
    for (k, n, new_ns) in &new {
        let Some(old_ns) = find(&old, k, *n) else { continue };
        let speedup = old_ns / new_ns * calibration;
        let info_only = k == "sph_density_legacy" || latency_bound(k);
        let verdict = if info_only {
            "(info)"
        } else {
            compared += 1;
            if 1.0 / speedup > REGRESSION_FACTOR {
                failed += 1;
                "REGRESSED"
            } else {
                ""
            }
        };
        println!("{k:<24} {n:>8} {old_ns:>14.0} {new_ns:>14.0} {speedup:>8.2}x {verdict}");
    }
    if compared == 0 {
        eprintln!("no overlapping (kernel, N) points between {old_path} and {new_path}");
        return 2;
    }
    if failed > 0 {
        eprintln!("{failed}/{compared} kernels regressed more than {REGRESSION_FACTOR}x");
        1
    } else {
        println!("all {compared} overlapping kernels within {REGRESSION_FACTOR}x");
        0
    }
}

/// Compare against a committed baseline; returns the process exit code.
fn check_against(samples: &[Sample], baseline_path: &str) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return 2;
        }
    };
    let doc = match jc_deploy::json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("cannot parse baseline {baseline_path}: {e:?}");
            return 2;
        }
    };
    let calibration = machine_calibration(samples, &doc);
    println!("machine calibration (sph_density_legacy vs baseline): {calibration:.2}x");
    let Some(results) = doc.get("results").and_then(|r| r.as_array()) else {
        eprintln!("baseline {baseline_path} has no results array");
        return 2;
    };
    let mut compared = 0;
    let mut failed = 0;
    for s in samples {
        if s.kernel == "sph_density_legacy" {
            continue; // the calibration kernel cannot regress by code
        }
        // Transport rows are dominated by syscall/loopback latency, which
        // the CPU-bound calibration cannot normalize — on shared CI
        // runners they would gate PRs on the machine, not the code.
        // Report them for the trajectory, never fail on them.
        if latency_bound(s.kernel) {
            if let Some(base_ns) = results
                .iter()
                .find(|r| {
                    r.get("kernel").and_then(|k| k.as_str()) == Some(s.kernel)
                        && r.get("n").and_then(|n| n.as_f64()) == Some(s.n as f64)
                })
                .and_then(|b| b.get("ns_per_step"))
                .and_then(|v| v.as_f64())
            {
                println!(
                    "check {:<24} N={:<6} {:.2}x of baseline (info only: latency-bound)",
                    s.kernel,
                    s.n,
                    s.ns_per_step / base_ns / calibration
                );
            }
            continue;
        }
        let base = results.iter().find(|r| {
            r.get("kernel").and_then(|k| k.as_str()) == Some(s.kernel)
                && r.get("n").and_then(|n| n.as_f64()) == Some(s.n as f64)
        });
        let Some(base_ns) = base.and_then(|b| b.get("ns_per_step")).and_then(|v| v.as_f64()) else {
            continue;
        };
        compared += 1;
        let factor = s.ns_per_step / base_ns / calibration;
        let verdict = if factor > REGRESSION_FACTOR {
            failed += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "check {:<24} N={:<6} {:.2}x of baseline, machine-normalized ({verdict})",
            s.kernel, s.n, factor
        );
    }
    if compared == 0 {
        eprintln!("no overlapping (kernel, N) points between run and baseline");
        return 2;
    }
    if failed > 0 {
        eprintln!("{failed}/{compared} kernels regressed more than {REGRESSION_FACTOR}x");
        1
    } else {
        println!("all {compared} overlapping kernels within {REGRESSION_FACTOR}x of baseline");
        0
    }
}
