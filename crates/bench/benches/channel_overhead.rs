//! Ablation A: the cost of the daemon/proxy indirection — LocalChannel vs
//! ThreadChannel RPC round-trips (the distributed IbisChannel's virtual
//! overhead is reported by the table1 binary instead, since it is
//! virtual-time, not wall-time).

use criterion::{criterion_group, criterion_main, Criterion};
use jc_amuse::channel::{LocalChannel, ThreadChannel};
use jc_amuse::worker::{Request, StellarWorker};
use jc_amuse::Channel;

fn bench_channels(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_rpc");
    group.sample_size(20);
    group.bench_function("local_ping", |b| {
        let mut ch = LocalChannel::new(Box::new(StellarWorker::new(vec![1.0], 0.02)));
        b.iter(|| ch.call(Request::Ping))
    });
    group.bench_function("thread_ping", |b| {
        let mut ch = ThreadChannel::spawn("sse", || StellarWorker::new(vec![1.0], 0.02));
        b.iter(|| ch.call(Request::Ping))
    });
    group.finish();
}

criterion_group!(benches, bench_channels);
criterion_main!(benches);
