//! Ablation C: SmartSockets connection strategies across firewall
//! configurations (direct / reverse / relay planning + relay delivery).

use criterion::{criterion_group, criterion_main, Criterion};
use jc_netsim::compute::CpuSpec;
use jc_netsim::topology::HostSpec;
use jc_netsim::{FirewallPolicy, SimDuration, Topology};
use jc_smartsockets::{ConnectionPlan, VirtualAddress};

fn topo_with(policy: FirewallPolicy) -> (Topology, jc_netsim::HostId, jc_netsim::HostId) {
    let mut t = Topology::new();
    let a = t.add_site("A", "", FirewallPolicy::Open);
    let b = t.add_site("B", "", policy);
    t.add_link(a, b, SimDuration::from_millis(5), 1.0, "wan");
    let ha = t.add_host(HostSpec::node("a", a, CpuSpec::generic()).as_front_end());
    let hb = t.add_host(HostSpec::node("b", b, CpuSpec::generic()).as_front_end());
    (t, ha, hb)
}

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("connection_planning");
    group.sample_size(20);
    for (name, policy) in [
        ("open->open(direct)", FirewallPolicy::Open),
        ("open->fw(reverse)", FirewallPolicy::FirewalledInbound),
    ] {
        let (mut t, ha, hb) = topo_with(policy);
        group.bench_function(name, |b| {
            b.iter(|| {
                ConnectionPlan::plan(
                    &mut t,
                    None,
                    VirtualAddress::new(ha, 1),
                    VirtualAddress::new(hb, 1),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
