//! The §5 loopback channel: throughput of the coupler↔daemon byte pipe.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jc_core::loopback::measure;

fn bench_loopback(c: &mut Criterion) {
    let mut group = c.benchmark_group("loopback");
    group.sample_size(10);
    for shift in [16u32, 20] {
        let bytes = 1u64 << shift;
        group.throughput(Throughput::Bytes(bytes * 64));
        group.bench_with_input(BenchmarkId::from_parameter(bytes), &bytes, |b, &bytes| {
            b.iter(|| measure(bytes as usize, 64, 8))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_loopback);
criterion_main!(benches);
