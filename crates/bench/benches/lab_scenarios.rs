//! Table 1 as a bench: wall-time to model one iteration of each scenario
//! (virtual-time results are printed by the table1_lab_scenarios binary).

use criterion::{criterion_group, criterion_main, Criterion};
use jc_core::scenarios::run_scenario;
use jc_core::Scenario;

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_scenarios");
    group.sample_size(10);
    for s in Scenario::all() {
        group.bench_function(format!("{s:?}"), |b| {
            b.iter(|| run_scenario(s, 1).result.seconds_per_iteration)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
