//! Ablation B: the multi-kernel choices — PhiGRAPE CPU vs GPU-modeled
//! backends, Fi vs Octgrav coupling, across problem sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jc_nbody::plummer::plummer_sphere;
use jc_nbody::{Backend, PhiGrape};
use jc_treegrav::{Fi, Octgrav};

fn bench_hermite(c: &mut Criterion) {
    let mut group = c.benchmark_group("phigrape_evolve");
    group.sample_size(10);
    for &n in &[128usize, 256, 512] {
        for (name, backend) in [("scalar", Backend::Scalar), ("cpu-parallel", Backend::CpuParallel)]
        {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                b.iter_batched(
                    || PhiGrape::new(plummer_sphere(n, 1), backend).with_softening(0.01),
                    |mut g| g.evolve_model(0.01),
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

fn bench_coupling(c: &mut Criterion) {
    let mut group = c.benchmark_group("coupling_kick");
    group.sample_size(10);
    for &n in &[512usize, 2048, 8192] {
        let src = plummer_sphere(n, 2);
        let tgt = plummer_sphere(256, 3);
        group.bench_with_input(BenchmarkId::new("fi", n), &n, |b, _| {
            let fi = Fi::new();
            b.iter(|| fi.solver.accelerations(&tgt.pos, &src.pos, &src.mass))
        });
        group.bench_with_input(BenchmarkId::new("octgrav", n), &n, |b, _| {
            let oct = Octgrav::new();
            b.iter(|| oct.solver.accelerations(&tgt.pos, &src.pos, &src.mass))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hermite, bench_coupling);
criterion_main!(benches);
