//! Steady-state zero-allocation proof for every kernel hot path.
//!
//! A counting global allocator tracks allocations made by the *current
//! thread*. The kernel tests pin their strictly sequential mode
//! (`max_threads = 1` / `Backend::Scalar`), whose steady state must be
//! allocation-free end to end. The pool test pins the *parallel* mode's
//! caller-side handoff: once the persistent workers exist and the
//! bounded channel buffers are warm, a fanning-out `chunked` call must
//! also allocate nothing on the calling thread. Each path is warmed
//! until its scratch buffers reach their high-water mark, then the
//! measured steady-state call must perform zero heap allocations.

#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: every method delegates to `System`, which upholds the full
// `GlobalAlloc` contract; the only addition is a thread-local counter
// bump (`try_with` so a counter access during TLS teardown cannot
// panic inside the allocator). No pointer is invented, retained, or
// changed on the way through.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller's `Layout` obligations are forwarded to `System`
    // unchanged (required trait method; the count is a side effect).
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        // SAFETY: `layout` is the caller's, passed through verbatim.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller guarantees `ptr` came from this allocator with
    // this `layout`; since `alloc` is `System.alloc`, forwarding holds.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` are the caller's, passed through verbatim.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same forwarding argument as `dealloc` — `ptr` was
    // produced by `System.alloc` under `layout`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        // SAFETY: arguments are the caller's, passed through verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations made by `f` on this thread.
fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

#[test]
fn sph_density_and_forces_steady_state_allocates_nothing() {
    let mut gas = jc_sph::particles::plummer_gas(800, 1.0, 5);
    let mut scratch = jc_sph::SphScratch::new();
    scratch.max_threads = 1;
    let mut rates = jc_sph::HydroRates::new();
    // warm: adapt h to its fixed point and grow every buffer to its
    // high-water mark
    for _ in 0..3 {
        jc_sph::density::compute_density_with(&mut gas, &mut scratch);
        jc_sph::forces::hydro_rates_into(&gas, &mut scratch, &mut rates);
    }
    let n = count_allocs(|| {
        jc_sph::density::compute_density_with(&mut gas, &mut scratch);
        jc_sph::forces::hydro_rates_into(&gas, &mut scratch, &mut rates);
    });
    assert_eq!(n, 0, "SPH density+forces steady state made {n} heap allocations");
    assert!(rates.interactions > 0, "sanity: work actually happened");
}

#[test]
fn simd_soa_acc_jerk_steady_state_allocates_nothing() {
    // below the parallel grain (64) the SimdSoa backend runs strictly
    // sequentially on the calling thread; its SoA source mirror is
    // thread-local and refilled in place, so the steady state is
    // allocation-free on any machine
    let n = 48;
    let ics = jc_nbody::plummer::plummer_sphere(n, 5);
    let mut acc = vec![[0.0; 3]; n];
    let mut jerk = vec![[0.0; 3]; n];
    let run = |acc: &mut Vec<[f64; 3]>, jerk: &mut Vec<[f64; 3]>| {
        jc_nbody::kernels::acc_jerk_into(
            jc_nbody::Backend::SimdSoa,
            &ics.pos,
            &ics.vel,
            &ics.mass,
            &ics.pos,
            &ics.vel,
            1e-4,
            true,
            acc,
            jerk,
        );
    };
    run(&mut acc, &mut jerk); // warm: SoA mirror grows to n
    run(&mut acc, &mut jerk);
    let allocs = count_allocs(|| run(&mut acc, &mut jerk));
    assert_eq!(allocs, 0, "SimdSoa acc_jerk steady state made {allocs} heap allocations");
    assert!(acc.iter().flatten().any(|x| *x != 0.0), "sanity: forces actually computed");
}

#[test]
fn simd_sph_density_and_forces_steady_state_allocates_nothing() {
    let mut gas = jc_sph::particles::plummer_gas(800, 1.0, 5);
    let mut scratch = jc_sph::SphScratch::new();
    scratch.max_threads = 1;
    scratch.simd = true;
    let mut rates = jc_sph::HydroRates::new();
    for _ in 0..3 {
        jc_sph::density::compute_density_with(&mut gas, &mut scratch);
        jc_sph::forces::hydro_rates_into(&gas, &mut scratch, &mut rates);
    }
    let n = count_allocs(|| {
        jc_sph::density::compute_density_with(&mut gas, &mut scratch);
        jc_sph::forces::hydro_rates_into(&gas, &mut scratch, &mut rates);
    });
    assert_eq!(n, 0, "SoA SPH density+forces steady state made {n} heap allocations");
    assert!(rates.interactions > 0, "sanity: work actually happened");
}

#[test]
fn simd_tree_walk_steady_state_allocates_nothing() {
    let mut x = 11u64;
    let mut rnd = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let pos: Vec<[f64; 3]> = (0..2000).map(|_| [rnd(), rnd(), rnd()]).collect();
    let mass = vec![1.0 / 2000.0; 2000];
    let mut solver = jc_treegrav::TreeGravity::new(0.5, 0.01);
    solver.max_threads = 1;
    solver.simd = true;
    let mut acc = Vec::new();
    solver.accelerations_into(&pos, &pos, &mass, &mut acc);
    solver.accelerations_into(&pos, &pos, &mass, &mut acc);
    let n = count_allocs(|| {
        solver.accelerations_into(&pos, &pos, &mass, &mut acc);
    });
    assert_eq!(n, 0, "SoA octree rebuild + walk made {n} heap allocations");
    assert!(solver.last_interactions() > 0, "sanity: the walk actually ran");
}

#[test]
fn hermite_step_steady_state_allocates_nothing() {
    let ics = jc_nbody::plummer::plummer_sphere(128, 3);
    let mut g = jc_nbody::PhiGrape::new(ics, jc_nbody::Backend::Scalar).with_softening(0.01);
    g.evolve_model(0.02); // warm: forces valid, scratch sized
    let evals0 = g.force_evals;
    let n = count_allocs(|| {
        g.evolve_model(0.03);
    });
    assert_eq!(n, 0, "Hermite steps made {n} heap allocations");
    assert!(g.force_evals > evals0, "sanity: steps actually ran");
}

#[test]
fn socket_channel_coupler_hot_path_allocates_nothing() {
    // A real TCP round trip: the coupler-side fast paths must encode
    // straight from borrowed slices into the channel's reused write
    // buffer and decode straight into caller-owned buffers. The server
    // runs on its own thread, so its work is invisible to this thread's
    // allocation counter — exactly the boundary we are proving.
    use jc_amuse::{Channel, Response, SocketChannel};
    let n = 256usize;
    let (addr, handle) = jc_amuse::spawn_tcp_worker("grav", move || {
        jc_amuse::GravityWorker::new(
            jc_nbody::plummer::plummer_sphere(n, 9),
            jc_nbody::Backend::Scalar,
        )
    });
    let mut ch = SocketChannel::connect(addr, "grav").unwrap();
    let mut snap = jc_amuse::worker::ParticleData::default();
    let dv = vec![[1e-9; 3]; n];
    // warm: grow the channel's encode/decode buffers and the snapshot
    for _ in 0..3 {
        assert!(ch.snapshot_into(&mut snap));
        assert!(matches!(ch.kick_slice(&dv), Response::Ok { .. }));
    }
    let allocs = count_allocs(|| {
        assert!(ch.snapshot_into(&mut snap));
        assert!(matches!(ch.kick_slice(&dv), Response::Ok { .. }));
    });
    assert_eq!(allocs, 0, "socket snapshot+kick made {allocs} heap allocations");
    assert_eq!(snap.mass.len(), n, "sanity: snapshots actually crossed the wire");
    drop(ch); // sends Stop so the server thread exits
    handle.join().unwrap().unwrap();
}

#[test]
fn socket_compute_kick_steady_state_allocates_nothing() {
    use jc_amuse::{Channel, SocketChannel};
    let (addr, handle) = jc_amuse::spawn_tcp_worker("fi", jc_amuse::CouplingWorker::fi);
    let mut ch = SocketChannel::connect(addr, "fi").unwrap();
    let scene = jc_nbody::plummer::plummer_sphere(512, 4);
    let mut acc = Vec::new();
    for _ in 0..2 {
        ch.compute_kick_into(&scene.pos, &scene.pos, &scene.mass, &mut acc).unwrap();
    }
    let allocs = count_allocs(|| {
        ch.compute_kick_into(&scene.pos, &scene.pos, &scene.mass, &mut acc).unwrap();
    });
    assert_eq!(allocs, 0, "socket compute-kick made {allocs} heap allocations");
    assert_eq!(acc.len(), 512, "sanity: accelerations actually crossed the wire");
    drop(ch);
    handle.join().unwrap().unwrap();
}

#[test]
fn sharded_local_pool_hot_path_allocates_nothing() {
    // The sharded fast paths gather through per-shard scratch buffers;
    // over in-process shards the whole scatter-gather must go quiet too.
    use jc_amuse::{Channel, LocalChannel, Response, ShardedChannel};
    let ics = jc_nbody::plummer::plummer_sphere(96, 6);
    let counts = jc_amuse::shard::partition(96, 3);
    let mut off = 0usize;
    let shards: Vec<Box<dyn Channel>> = counts
        .iter()
        .map(|&c| {
            let sub = ics.slice(off, off + c);
            off += c;
            Box::new(LocalChannel::new(Box::new(jc_amuse::GravityWorker::new(
                sub,
                jc_nbody::Backend::Scalar,
            )))) as Box<dyn Channel>
        })
        .collect();
    let mut pool = ShardedChannel::new(shards);
    let mut snap = jc_amuse::worker::ParticleData::default();
    let dv = vec![[1e-9; 3]; 96];
    for _ in 0..3 {
        assert!(pool.snapshot_into(&mut snap));
        assert!(matches!(pool.kick_slice(&dv), Response::Ok { .. }));
    }
    let allocs = count_allocs(|| {
        assert!(pool.snapshot_into(&mut snap));
        assert!(matches!(pool.kick_slice(&dv), Response::Ok { .. }));
    });
    assert_eq!(allocs, 0, "sharded snapshot+kick made {allocs} heap allocations");
    assert_eq!(snap.mass.len(), 96);
}

#[test]
fn pooled_parallel_chunked_steady_state_allocates_nothing() {
    // The parallel mode's caller side must go quiet too: the first
    // fanning-out call spawns the pool threads and fills the bounded
    // channel buffers; after that, tasks live in a fixed stack array,
    // latches are plain `Mutex`/`Condvar`, and a warm `send` into a
    // bounded channel does not allocate. (Worker-thread allocations are
    // invisible to this thread's counter by construction — the claim
    // pinned here is the handoff, which is entirely caller-side.)
    let data: Vec<f64> = (0..4096).map(|i| (i as f64).sin()).collect();
    let mut out = vec![0.0f64; 4096];
    let mut states = vec![0u64; 4];
    let run = |out: &mut [f64], states: &mut [u64]| {
        jc_compute::chunked(
            4,
            (data.as_slice(), out),
            states,
            0.0f64,
            |s0, (src, dst): (&[f64], &mut [f64]), calls| {
                *calls += 1;
                let mut acc = 0.0;
                for (k, (x, y)) in src.iter().zip(dst.iter_mut()).enumerate() {
                    *y = x * 0.5 + (s0 + k) as f64 * 1e-6;
                    acc += *y;
                }
                acc
            },
            |a, b| a + b,
        )
    };
    // warm: spawns the pool workers and their channel buffers
    let r0 = run(&mut out, &mut states);
    let r1 = run(&mut out, &mut states);
    assert_eq!(r0.to_bits(), r1.to_bits(), "sanity: the reduction is deterministic");
    let mut r2 = 0.0;
    let allocs = count_allocs(|| {
        r2 = run(&mut out, &mut states);
    });
    assert_eq!(allocs, 0, "warm parallel chunked call made {allocs} caller-side allocations");
    assert_eq!(r2.to_bits(), r0.to_bits());
    assert!(states.iter().all(|&c| c == 3), "sanity: every worker ran every call");
}

#[test]
fn tree_build_and_walk_steady_state_allocates_nothing() {
    let mut x = 11u64;
    let mut rnd = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let pos: Vec<[f64; 3]> = (0..2000).map(|_| [rnd(), rnd(), rnd()]).collect();
    let mass = vec![1.0 / 2000.0; 2000];
    let mut solver = jc_treegrav::TreeGravity::new(0.5, 0.01);
    solver.max_threads = 1;
    let mut acc = Vec::new();
    // warm: arena, stacks and output grow to their high-water mark
    solver.accelerations_into(&pos, &pos, &mass, &mut acc);
    solver.accelerations_into(&pos, &pos, &mass, &mut acc);
    let n = count_allocs(|| {
        solver.accelerations_into(&pos, &pos, &mass, &mut acc);
    });
    assert_eq!(n, 0, "octree rebuild + walk made {n} heap allocations");
    assert!(solver.last_interactions() > 0, "sanity: the walk actually ran");
}
