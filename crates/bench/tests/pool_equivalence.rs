//! Property proof: pooled `chunked` is bitwise interchangeable with the
//! scoped-spawn reference implementation.
//!
//! `jc_compute::par::chunked` hands parallel chunks to the persistent
//! worker pool; `chunked_scoped` is the old per-call `std::thread::scope`
//! implementation, kept callable exactly so this suite can hold the two
//! against each other. The contract under test: identical chunk
//! geometry, positional state assignment and ascending merge order mean
//! the two produce **bitwise identical** outputs and reductions for any
//! worker count. The chunk bodies here are the real kernels — a
//! sequential Barnes-Hut walk per target chunk and a full SPH
//! density+rates pass per worker — in both their scalar and SoA/SIMD
//! variants, so the property is pinned on the workloads the pool
//! actually carries, not on toy arithmetic.

use jc_compute::{chunked, chunked_scoped};
use proptest::prelude::*;

/// Deterministic target cloud (same LCG as the zero-alloc suite).
fn cloud(n: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<f64>) {
    let mut x = seed.wrapping_mul(2862933555777941757).wrapping_add(11);
    let mut rnd = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let pos: Vec<[f64; 3]> = (0..n).map(|_| [rnd(), rnd(), rnd()]).collect();
    let mass = vec![1.0 / n as f64; n];
    (pos, mass)
}

/// Walk `pos` against a per-worker prebuilt tree, chunked over `w`
/// workers through either the pool (`pooled`) or scoped spawning.
/// Returns the accelerations and the merged interaction total.
fn tree_case(
    pooled: bool,
    w: usize,
    pos: &[[f64; 3]],
    mass: &[f64],
    simd: bool,
) -> (Vec<[f64; 3]>, u64) {
    let mut out = vec![[0.0f64; 3]; pos.len()];
    // Per-worker solver: `walk_targets` needs mutable scratch, and each
    // deterministic rebuild over the same sources yields the same tree.
    let mut states: Vec<(jc_treegrav::TreeGravity, Vec<[f64; 3]>)> = (0..w)
        .map(|_| {
            let mut s = jc_treegrav::TreeGravity::new(0.6, 0.02);
            s.max_threads = 1;
            s.simd = simd;
            s.rebuild(pos, mass);
            (s, Vec::new())
        })
        .collect();
    let body = |_s0: usize,
                (tc, oc): (&[[f64; 3]], &mut [[f64; 3]]),
                st: &mut (jc_treegrav::TreeGravity, Vec<[f64; 3]>)| {
        let (solver, tmp) = st;
        solver.walk_targets(tc, tmp);
        oc.copy_from_slice(tmp);
        solver.last_interactions()
    };
    let data = (pos, out.as_mut_slice());
    let total = if pooled {
        chunked(w, data, &mut states, 0u64, body, |a, b| a + b)
    } else {
        chunked_scoped(w, data, &mut states, 0u64, body, |a, b| a + b)
    };
    (out, total)
}

/// Full SPH density + hydro rates per worker (the pass is coupled
/// across particles, so every worker computes the whole deterministic
/// answer on its own gas replica and writes only its chunk), chunked
/// through either the pool or scoped spawning.
fn sph_case(
    pooled: bool,
    w: usize,
    n: usize,
    seed: u64,
    simd: bool,
) -> (Vec<[f64; 3]>, Vec<f64>, u64) {
    let mut acc = vec![[0.0f64; 3]; n];
    let mut du = vec![0.0f64; n];
    let mut states: Vec<(jc_sph::particles::GasParticles, jc_sph::SphScratch, jc_sph::HydroRates)> =
        (0..w)
            .map(|_| {
                let gas = jc_sph::particles::plummer_gas(n, 1.0, seed);
                let mut scr = jc_sph::SphScratch::new();
                scr.max_threads = 1;
                scr.simd = simd;
                (gas, scr, jc_sph::HydroRates::new())
            })
            .collect();
    let body = |s0: usize,
                (ac, dc): (&mut [[f64; 3]], &mut [f64]),
                st: &mut (
        jc_sph::particles::GasParticles,
        jc_sph::SphScratch,
        jc_sph::HydroRates,
    )| {
        let (gas, scr, rates) = st;
        jc_sph::density::compute_density_with(gas, scr);
        jc_sph::forces::hydro_rates_into(gas, scr, rates);
        ac.copy_from_slice(&rates.acc[s0..s0 + ac.len()]);
        dc.copy_from_slice(&rates.du[s0..s0 + dc.len()]);
        rates.interactions
    };
    let data = (acc.as_mut_slice(), du.as_mut_slice());
    let total = if pooled {
        chunked(w, data, &mut states, 0u64, body, |a, b| a + b)
    } else {
        chunked_scoped(w, data, &mut states, 0u64, body, |a, b| a + b)
    };
    (acc, du, total)
}

/// Bitwise comparison of acceleration vectors (`==` would conflate
/// `-0.0` with `0.0` and any NaN would vacuously pass).
fn bits3(v: &[[f64; 3]]) -> Vec<[u64; 3]> {
    v.iter().map(|a| [a[0].to_bits(), a[1].to_bits(), a[2].to_bits()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Pooled and scoped execution of the Barnes-Hut walk agree bit for
    /// bit — outputs and interaction totals — for any worker count, on
    /// both the scalar and the SoA/SIMD traversal.
    #[test]
    fn pooled_matches_scoped_on_tree_walk(w in 1usize..=8, seed in 0u64..1 << 32) {
        let (pos, mass) = cloud(300, seed);
        for simd in [false, true] {
            let (a, ia) = tree_case(true, w, &pos, &mass, simd);
            let (b, ib) = tree_case(false, w, &pos, &mass, simd);
            prop_assert!(ia == ib, "interaction totals diverged (w={}, simd={})", w, simd);
            prop_assert!(bits3(&a) == bits3(&b), "tree walk diverged (w={}, simd={})", w, simd);
        }
    }

    /// Pooled and scoped execution of the SPH density+rates pass agree
    /// bit for bit for any worker count, on both the scalar and the
    /// staged SoA path.
    #[test]
    fn pooled_matches_scoped_on_sph_rates(w in 1usize..=8, seed in 0u64..1 << 32) {
        for simd in [false, true] {
            let (aa, da, ia) = sph_case(true, w, 300, seed, simd);
            let (ab, db, ib) = sph_case(false, w, 300, seed, simd);
            prop_assert!(ia == ib, "interaction totals diverged (w={}, simd={})", w, simd);
            prop_assert!(bits3(&aa) == bits3(&ab), "SPH acc diverged (w={}, simd={})", w, simd);
            let bd = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert!(bd(&da) == bd(&db), "SPH du diverged (w={}, simd={})", w, simd);
        }
    }
}
