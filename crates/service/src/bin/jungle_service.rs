//! jungle-service — the multi-session jobs front-end as a process.
//!
//! Runs a self-contained load campaign against an in-process (default)
//! or process-host pool and prints the shed-vs-served accounting plus
//! latency percentiles; the CI smoke and nightly soak drive exactly
//! this binary. Usage:
//!
//! ```text
//! jungle-service --sessions 300 --pool 4 --stars 8 --gas 24 \
//!     --iterations 2 --substeps 1 --quota 64 --queue-depth 512
//! jungle-service --sessions 40 --process --chaos-seed 7 --chaos-every 2
//! ```
//!
//! Exits nonzero if any session failed, the accounting does not add up
//! (`submitted == completed + failed`, sheds counted apart), or a
//! panic escaped anywhere. `--allow-failures` relaxes the first check
//! for deliberately chaotic soaks. `--json` writes a machine-readable
//! summary to stdout (the nightly soak uploads it as an artifact).

use jc_service::{
    ChaosKillPolicy, HostKind, QuotaPolicy, Service, ServiceConfig, SessionSpec, SubmitError,
};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    sessions: usize,
    tenants: usize,
    pool: Option<usize>,
    stars: usize,
    gas: usize,
    iterations: u64,
    substeps: u32,
    quota: usize,
    queue_depth: usize,
    deadline_ms: u64,
    process: bool,
    worker_binary: Option<PathBuf>,
    chaos_seed: Option<u64>,
    chaos_every: u64,
    allow_failures: bool,
    json: bool,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            sessions: 200,
            tenants: 4,
            pool: None,
            stars: 8,
            gas: 24,
            iterations: 2,
            substeps: 1,
            quota: 32,
            queue_depth: 256,
            deadline_ms: 0,
            process: false,
            worker_binary: None,
            chaos_seed: None,
            chaos_every: 2,
            allow_failures: false,
            json: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: jungle-service [--sessions N] [--tenants T] [--pool K] [--stars N] [--gas N] \
         [--iterations N] [--substeps N] [--quota Q] [--queue-depth D] [--deadline-ms MS] \
         [--process] [--worker-binary PATH] [--chaos-seed S] [--chaos-every E] \
         [--allow-failures] [--json]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--sessions" => args.sessions = val("--sessions").parse().unwrap_or_else(|_| usage()),
            "--tenants" => args.tenants = val("--tenants").parse().unwrap_or_else(|_| usage()),
            "--pool" => args.pool = Some(val("--pool").parse().unwrap_or_else(|_| usage())),
            "--stars" => args.stars = val("--stars").parse().unwrap_or_else(|_| usage()),
            "--gas" => args.gas = val("--gas").parse().unwrap_or_else(|_| usage()),
            "--iterations" => {
                args.iterations = val("--iterations").parse().unwrap_or_else(|_| usage())
            }
            "--substeps" => args.substeps = val("--substeps").parse().unwrap_or_else(|_| usage()),
            "--quota" => args.quota = val("--quota").parse().unwrap_or_else(|_| usage()),
            "--queue-depth" => {
                args.queue_depth = val("--queue-depth").parse().unwrap_or_else(|_| usage())
            }
            "--deadline-ms" => {
                args.deadline_ms = val("--deadline-ms").parse().unwrap_or_else(|_| usage())
            }
            "--process" => args.process = true,
            "--worker-binary" => args.worker_binary = Some(PathBuf::from(val("--worker-binary"))),
            "--chaos-seed" => {
                args.chaos_seed = Some(val("--chaos-seed").parse().unwrap_or_else(|_| usage()))
            }
            "--chaos-every" => {
                args.chaos_every = val("--chaos-every").parse().unwrap_or_else(|_| usage())
            }
            "--allow-failures" => args.allow_failures = true,
            "--json" => args.json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

/// `jungle-worker` next to this binary (the cargo target dir layout);
/// overridable with `--worker-binary`.
fn sibling_worker_binary() -> Option<PathBuf> {
    let me = std::env::current_exe().ok()?;
    let candidate = me.parent()?.join("jungle-worker");
    candidate.exists().then_some(candidate)
}

fn percentile(sorted_ms: &[u64], p: f64) -> u64 {
    if sorted_ms.is_empty() {
        return 0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn main() {
    let args = parse_args();
    let mut cfg = ServiceConfig::from_env();
    if let Some(k) = args.pool {
        cfg.pool_size = k;
    }
    cfg.quota = QuotaPolicy { max_queue_depth: args.queue_depth, per_tenant_in_flight: args.quota };
    if args.deadline_ms > 0 {
        cfg.default_deadline_ms = args.deadline_ms;
    }
    if args.process {
        let binary =
            args.worker_binary.clone().or_else(sibling_worker_binary).unwrap_or_else(|| {
                eprintln!(
                    "jungle-service: --process needs jungle-worker next to this binary \
                     or --worker-binary PATH"
                );
                std::process::exit(2)
            });
        cfg.host_kind = HostKind::Process { binary };
    }
    if let Some(seed) = args.chaos_seed {
        cfg.chaos = Some(ChaosKillPolicy {
            plan: jc_amuse::FaultPlan::seeded(seed),
            every_iterations: args.chaos_every.max(1),
        });
    }
    let pool_size = cfg.pool_size;
    let service = Service::new(cfg);

    let t0 = Instant::now();
    let mut ids = Vec::with_capacity(args.sessions);
    let (mut shed_overloaded, mut shed_quota) = (0u64, 0u64);
    for i in 0..args.sessions {
        let tenant = format!("tenant-{}", i % args.tenants.max(1));
        let spec = SessionSpec {
            stars: args.stars,
            gas: args.gas,
            seed: 1 + i as u64,
            iterations: args.iterations,
            substeps: args.substeps,
            ..SessionSpec::default()
        };
        match service.submit(&tenant, spec) {
            Ok(id) => ids.push(id),
            Err(SubmitError::Overloaded { .. }) => shed_overloaded += 1,
            Err(SubmitError::QuotaExceeded { .. }) => shed_quota += 1,
            Err(SubmitError::ShuttingDown) => unreachable!("not shutting down"),
        }
    }

    let mut wall_ms: Vec<u64> = Vec::with_capacity(ids.len());
    let mut failed = 0u64;
    let mut migrations = 0u64;
    for id in &ids {
        match service.wait(*id) {
            Some(jc_service::SessionStatus::Completed { wall_ms: ms, migrations: m, .. }) => {
                wall_ms.push(ms);
                migrations += m as u64;
            }
            Some(jc_service::SessionStatus::Failed { failure, migrations: m }) => {
                failed += 1;
                migrations += m as u64;
                eprintln!("session {id} failed: {failure}");
            }
            other => {
                eprintln!("session {id} ended in a non-terminal state: {other:?}");
                failed += 1;
            }
        }
        service.forget(*id);
    }
    let elapsed = t0.elapsed();
    let counters = service.counters();
    service.shutdown();

    wall_ms.sort_unstable();
    let p50 = percentile(&wall_ms, 0.50);
    let p99 = percentile(&wall_ms, 0.99);
    let served = wall_ms.len() as u64;
    let submitted_total = args.sessions as u64;
    let accounted = served + failed + shed_overloaded + shed_quota == submitted_total
        && counters.submitted == served + failed
        && counters.completed == served
        && counters.failed == failed;

    if args.json {
        println!(
            "{{\"schema\":\"jc-service-load/v1\",\"sessions\":{submitted_total},\
             \"pool\":{pool_size},\"served\":{served},\"failed\":{failed},\
             \"shed_overloaded\":{shed_overloaded},\"shed_quota\":{shed_quota},\
             \"migrations\":{migrations},\"chaos_kills\":{},\"rewarms\":{},\
             \"p50_ms\":{p50},\"p99_ms\":{p99},\"elapsed_ms\":{},\"accounting_clean\":{accounted}}}",
            counters.chaos_kills,
            counters.rewarms,
            elapsed.as_millis(),
        );
    } else {
        println!(
            "jungle-service: {submitted_total} submissions over {} tenants onto {pool_size} hosts \
             in {:.2}s",
            args.tenants,
            elapsed.as_secs_f64()
        );
        println!(
            "  served {served}  failed {failed}  shed {} (overloaded {shed_overloaded} / quota {shed_quota})",
            shed_overloaded + shed_quota
        );
        println!(
            "  migrations {migrations}  chaos kills {}  re-warms {}  p50 {p50} ms  p99 {p99} ms",
            counters.chaos_kills, counters.rewarms
        );
        println!("  accounting clean: {accounted}");
    }

    let ok = accounted && (args.allow_failures || failed == 0);
    std::process::exit(if ok { 0 } else { 1 });
}
