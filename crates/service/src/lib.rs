//! # jc_service — the resilient multi-session service layer
//!
//! The paper runs *one* coupled simulation per jungle reservation. This
//! crate is the layer a shared deployment needs on top: a jobs API
//! ([`Service::submit`] a [`SessionSpec`], poll [`Service::status`],
//! stream the final snapshot over the existing wire protocol) in front
//! of a session scheduler that places sessions onto a bounded pool of
//! *warm* worker hosts — either in-process worker quads or
//! `jungle-worker` process quads kept alive between sessions and reused
//! via checkpoint restore ([`jc_amuse::worker::Request::LoadState`]).
//!
//! Robustness invariants, in escalation order (the supervision ladder):
//!
//! 1. **retry in place** — transient transport faults are resent by the
//!    channel's [`jc_amuse::chaos::RetryPolicy`], bounded by the
//!    session's wall-clock deadline propagated into
//!    [`jc_amuse::chaos::RetryPolicy::deadline_ms`];
//! 2. **heal + restore** — a fatal worker error inside an iteration is
//!    handled by [`jc_amuse::bridge::Bridge::iteration_recovering`]
//!    (heal channels, restore the last checkpoint, replay);
//! 3. **migrate** — a dead host (chaos kill, unrecoverable bridge) gets
//!    its session re-queued with the last good [`jc_amuse::Checkpoint`]
//!    and an exclusion for the dead host; another warm host restores
//!    and replays it, bitwise-identically;
//! 4. **fail typed** — out of hosts or migrations (or out of deadline),
//!    the session terminates with a typed [`SessionFailure`]; the
//!    service itself never panics and never queues unboundedly
//!    (admission control sheds with [`SubmitError::Overloaded`] /
//!    [`SubmitError::QuotaExceeded`]).

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![deny(unreachable_pub)]

pub mod pool;
pub mod quota;
pub mod service;
pub mod session;

pub use pool::{HostHealth, HostKind};
pub use quota::QuotaPolicy;
pub use service::{ChaosKillPolicy, Service, ServiceConfig, ServiceCounters};
pub use session::{SessionFailure, SessionId, SessionSpec, SessionStatus, SubmitError};
