//! Session vocabulary: what a job asks for, every state it can be in,
//! and the typed rejections the admission controller hands back.

use jc_amuse::channel::ChannelStats;
use jc_amuse::worker::ParticleData;

/// Handle for one submitted session, unique for the life of a
/// [`crate::Service`].
pub type SessionId = u64;

/// What one session wants simulated: the embedded-cluster scenario
/// knobs ([`jc_amuse::EmbeddedCluster::build`]) plus run length and an
/// optional wall-clock budget.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Star count.
    pub stars: usize,
    /// Gas particle count.
    pub gas: usize,
    /// Fraction of the cluster mass in gas (in `(0, 1)`).
    pub gas_fraction: f64,
    /// Initial-conditions seed — the whole run is a pure function of
    /// this spec, which is what makes migration verifiable bitwise.
    pub seed: u64,
    /// Outer bridge iterations to run.
    pub iterations: u64,
    /// Substeps per outer iteration.
    pub substeps: u32,
    /// Wall-clock budget for the whole session in milliseconds,
    /// measured from submission (queue time counts — it is an SLA, not
    /// a compute meter). 0 means "use the service default"
    /// ([`crate::ServiceConfig::default_deadline_ms`], itself 0 =
    /// unbounded).
    pub deadline_ms: u64,
    /// Keep the final (stars, gas) snapshot in the session record so
    /// [`crate::Service::write_snapshot`] can stream it. Off by default:
    /// a thousand-session load run must stay memory-bounded.
    pub keep_snapshot: bool,
}

impl Default for SessionSpec {
    fn default() -> SessionSpec {
        SessionSpec {
            stars: 24,
            gas: 96,
            gas_fraction: 0.5,
            seed: 1,
            iterations: 4,
            substeps: 2,
            deadline_ms: 0,
            keep_snapshot: false,
        }
    }
}

/// Why a session terminated without completing. Every variant is a
/// *terminal, typed* outcome — the ladder's last rung is never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionFailure {
    /// The session's wall-clock budget ran out (queue wait included).
    DeadlineExceeded {
        /// The budget that was exhausted, in milliseconds.
        budget_ms: u64,
    },
    /// Every pool host this session may still run on is excluded (each
    /// one already failed it once) — migration has nowhere left to go.
    NoHealthyHost,
    /// The migration budget is spent or recovery itself failed.
    Unrecoverable {
        /// The final underlying error.
        detail: String,
    },
}

impl std::fmt::Display for SessionFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionFailure::DeadlineExceeded { budget_ms } => {
                write!(f, "session deadline of {budget_ms} ms exceeded")
            }
            SessionFailure::NoHealthyHost => write!(f, "no healthy host left to migrate to"),
            SessionFailure::Unrecoverable { detail } => write!(f, "unrecoverable: {detail}"),
        }
    }
}

/// Where a session is in its lifecycle. Poll with
/// [`crate::Service::status`]; block with [`crate::Service::wait`].
#[derive(Clone, Debug)]
pub enum SessionStatus {
    /// Admitted, waiting for a warm host.
    Queued,
    /// Executing on pool host `host` (after `migrations` migrations).
    Running {
        /// Pool index of the host currently running the session.
        host: usize,
        /// Checkpoint migrations so far.
        migrations: u32,
    },
    /// Finished every iteration.
    Completed {
        /// Iterations run (equals the spec's request).
        iterations: u64,
        /// Checkpoint migrations survived on the way.
        migrations: u32,
        /// FNV-1a digest over the final (stars, gas) state bits — two
        /// sessions with the same [`SessionSpec`] must agree on this no
        /// matter which hosts ran them or how often they migrated.
        digest: u64,
        /// Wall-clock from submission to completion, milliseconds.
        wall_ms: u64,
        /// Channel traffic of the whole session, summed over all four
        /// worker channels and every host it ran on.
        stats: ChannelStats,
    },
    /// Terminated with a typed failure.
    Failed {
        /// Why.
        failure: SessionFailure,
        /// Migrations attempted before giving up.
        migrations: u32,
    },
}

impl SessionStatus {
    /// Completed or Failed — safe to stop polling.
    pub fn is_terminal(&self) -> bool {
        matches!(self, SessionStatus::Completed { .. } | SessionStatus::Failed { .. })
    }
}

/// Typed admission rejection. Submission never blocks and never queues
/// unboundedly: past these limits the request is shed immediately.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The global run queue is full.
    Overloaded {
        /// Sessions already queued.
        queued: usize,
        /// The configured queue-depth bound.
        limit: usize,
    },
    /// This tenant is at its in-flight (queued + running) cap.
    QuotaExceeded {
        /// The tenant that hit its cap.
        tenant: String,
        /// That tenant's sessions currently in flight.
        in_flight: usize,
        /// The configured per-tenant bound.
        limit: usize,
    },
    /// The service is draining for shutdown.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { queued, limit } => {
                write!(f, "overloaded: {queued} sessions queued (limit {limit})")
            }
            SubmitError::QuotaExceeded { tenant, in_flight, limit } => {
                write!(
                    f,
                    "quota exceeded: tenant {tenant:?} has {in_flight} in flight (limit {limit})"
                )
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// FNV-1a over the bit patterns of both snapshots — the migration
/// test's equality witness. Bitwise, not approximate: checkpoint
/// restore + replay is exact, so the digest must be too.
pub fn state_digest(stars: &ParticleData, gas: &ParticleData) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: f64| {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for p in [stars, gas] {
        eat(p.mass.len() as f64);
        for i in 0..p.mass.len() {
            eat(p.mass[i]);
            for k in 0..3 {
                eat(p.pos[i][k]);
                eat(p.vel[i][k]);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_separates_and_reproduces() {
        let mut a =
            ParticleData { mass: vec![1.0, 2.0], pos: vec![[0.0; 3]; 2], vel: vec![[0.5; 3]; 2] };
        let b = a.clone();
        let gas = ParticleData::default();
        assert_eq!(state_digest(&a, &gas), state_digest(&b, &gas));
        a.vel[1][2] += 1e-15;
        assert_ne!(state_digest(&a, &gas), state_digest(&b, &gas));
    }

    #[test]
    fn rejections_and_failures_render() {
        let e = SubmitError::Overloaded { queued: 9, limit: 8 };
        assert!(e.to_string().contains("overloaded"));
        let e = SubmitError::QuotaExceeded { tenant: "t".into(), in_flight: 3, limit: 2 };
        assert!(e.to_string().contains("quota"));
        let f = SessionFailure::DeadlineExceeded { budget_ms: 10 };
        assert!(f.to_string().contains("10 ms"));
    }
}
