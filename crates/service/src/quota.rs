//! Admission control: bounded queue depth and per-tenant quotas.
//!
//! The service's memory is bounded by construction — a session costs
//! admission *before* anything is allocated for it, and both bounds
//! shed with typed errors instead of blocking or queuing unboundedly.

use crate::session::SubmitError;
use std::collections::BTreeMap;

/// The two admission bounds.
#[derive(Clone, Copy, Debug)]
pub struct QuotaPolicy {
    /// Sessions that may wait in the global run queue at once. A
    /// submission past this bound is shed with
    /// [`SubmitError::Overloaded`].
    pub max_queue_depth: usize,
    /// Sessions one tenant may have in flight (queued + running) at
    /// once. Past it: [`SubmitError::QuotaExceeded`].
    pub per_tenant_in_flight: usize,
}

impl Default for QuotaPolicy {
    fn default() -> QuotaPolicy {
        QuotaPolicy { max_queue_depth: 64, per_tenant_in_flight: 8 }
    }
}

/// Per-tenant in-flight bookkeeping. Entries are dropped the moment a
/// tenant's count returns to zero, so the ledger's size is bounded by
/// the number of tenants *currently admitted*, not ever seen.
#[derive(Default)]
pub(crate) struct TenantLedger {
    in_flight: BTreeMap<String, usize>,
}

impl TenantLedger {
    /// Check both bounds and, on success, charge the tenant one
    /// in-flight slot. `queued_now` is the current global queue length.
    pub(crate) fn try_admit(
        &mut self,
        tenant: &str,
        policy: &QuotaPolicy,
        queued_now: usize,
    ) -> Result<(), SubmitError> {
        if queued_now >= policy.max_queue_depth {
            return Err(SubmitError::Overloaded {
                queued: queued_now,
                limit: policy.max_queue_depth,
            });
        }
        let n = self.in_flight.get(tenant).copied().unwrap_or(0);
        if n >= policy.per_tenant_in_flight {
            return Err(SubmitError::QuotaExceeded {
                tenant: tenant.to_string(),
                in_flight: n,
                limit: policy.per_tenant_in_flight,
            });
        }
        *self.in_flight.entry(tenant.to_string()).or_insert(0) += 1;
        Ok(())
    }

    /// Return a tenant's slot when its session reaches a terminal state.
    pub(crate) fn release(&mut self, tenant: &str) {
        if let Some(n) = self.in_flight.get_mut(tenant) {
            *n -= 1;
            if *n == 0 {
                self.in_flight.remove(tenant);
            }
        }
    }

    /// In-flight sessions for one tenant.
    #[cfg(test)]
    pub(crate) fn in_flight(&self, tenant: &str) -> usize {
        self.in_flight.get(tenant).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_charges_and_releases() {
        let policy = QuotaPolicy { max_queue_depth: 10, per_tenant_in_flight: 2 };
        let mut ledger = TenantLedger::default();
        assert!(ledger.try_admit("a", &policy, 0).is_ok());
        assert!(ledger.try_admit("a", &policy, 0).is_ok());
        match ledger.try_admit("a", &policy, 0) {
            Err(SubmitError::QuotaExceeded { in_flight: 2, limit: 2, .. }) => {}
            other => panic!("expected quota rejection, got {other:?}"),
        }
        // an unrelated tenant is unaffected
        assert!(ledger.try_admit("b", &policy, 0).is_ok());
        ledger.release("a");
        assert!(ledger.try_admit("a", &policy, 0).is_ok());
        // drained tenants leave no residue
        ledger.release("a");
        ledger.release("a");
        ledger.release("b");
        assert_eq!(ledger.in_flight("a"), 0);
        assert!(ledger.in_flight.is_empty(), "ledger must not grow with tenant history");
    }

    #[test]
    fn queue_bound_sheds_before_quota() {
        let policy = QuotaPolicy { max_queue_depth: 1, per_tenant_in_flight: 100 };
        let mut ledger = TenantLedger::default();
        match ledger.try_admit("a", &policy, 1) {
            Err(SubmitError::Overloaded { queued: 1, limit: 1 }) => {}
            other => panic!("expected overload rejection, got {other:?}"),
        }
        // a shed submission must not charge the tenant
        assert_eq!(ledger.in_flight("a"), 0);
    }
}
