//! The session scheduler: a jobs API over a pool of warm hosts.
//!
//! One executor thread per pool slot owns one warm host (channels
//! never cross threads — only checkpoints, specs, and statuses do,
//! which is exactly the set of things that must survive a migration
//! anyway). Executors pull admitted sessions from a shared bounded
//! queue; a session whose host dies is re-queued with its last good
//! checkpoint and an exclusion for that host, and whichever other
//! executor picks it up restores and replays it — bitwise-identically,
//! because checkpoint restore is bitwise-transparent.

use crate::pool::{HealthBoard, HostChannels, HostHealth, HostKind, WarmHost};
use crate::quota::{QuotaPolicy, TenantLedger};
use crate::session::{
    state_digest, SessionFailure, SessionId, SessionSpec, SessionStatus, SubmitError,
};
use jc_amuse::channel::ChannelStats;
use jc_amuse::chaos::{FaultPlan, RetryPolicy};
use jc_amuse::worker::{ModelWorker, ParticleData, Request, Response};
use jc_amuse::{
    wire, Bridge, BridgeConfig, Checkpoint, EmbeddedCluster, ModelState, RecoveryPolicy,
};
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Seeded host-kill schedule: every `every_iterations` completed
/// iterations of a session, the [`FaultPlan`] picks a pool-wide victim;
/// if that victim is the host the session is running on, its kill
/// switch trips and the session must migrate to survive. Same plan
/// seed + session seed → same kills, so a soak failure replays exactly.
#[derive(Clone, Copy, Debug)]
pub struct ChaosKillPolicy {
    /// The deterministic fault plan supplying victims.
    pub plan: FaultPlan,
    /// Kill-decision cadence in completed iterations (≥ 1).
    pub every_iterations: u64,
}

/// Everything a [`Service`] is configured with.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Warm hosts (= executor threads). Env default: `JC_POOL_SIZE`.
    pub pool_size: usize,
    /// What the hosts are made of.
    pub host_kind: HostKind,
    /// Admission bounds.
    pub quota: QuotaPolicy,
    /// Session deadline applied when a spec leaves its own at 0, in
    /// milliseconds (0 = unbounded). Env default: `JC_SESSION_DEADLINE_MS`.
    pub default_deadline_ms: u64,
    /// In-place recovery policy per iteration (ladder rung 2).
    pub recovery: RecoveryPolicy,
    /// Checkpoint migrations a session may spend before it fails typed.
    pub max_migrations: u32,
    /// Session failures on one host before the board declares it dead.
    pub strikes_to_dead: u32,
    /// Retry policy armed on every process-host channel (rung 1). The
    /// session deadline is propagated into its `deadline_ms` at lease
    /// time.
    pub channel_retry: RetryPolicy,
    /// Optional seeded chaos kills.
    pub chaos: Option<ChaosKillPolicy>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            pool_size: 2,
            host_kind: HostKind::InProcess,
            quota: QuotaPolicy::default(),
            default_deadline_ms: 0,
            recovery: RecoveryPolicy::default(),
            max_migrations: 3,
            strikes_to_dead: 2,
            channel_retry: RetryPolicy::standard(42),
            chaos: None,
        }
    }
}

impl ServiceConfig {
    /// Defaults with the environment knobs applied: `JC_POOL_SIZE`
    /// (pool size) and `JC_SESSION_DEADLINE_MS` (default session
    /// deadline).
    pub fn from_env() -> ServiceConfig {
        let mut cfg = ServiceConfig::default();
        if let Ok(v) = std::env::var("JC_POOL_SIZE") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    cfg.pool_size = n;
                }
            }
        }
        if let Ok(v) = std::env::var("JC_SESSION_DEADLINE_MS") {
            if let Ok(ms) = v.trim().parse::<u64>() {
                cfg.default_deadline_ms = ms;
            }
        }
        cfg
    }
}

/// A monotonic snapshot of the service's shed-vs-served accounting.
/// Invariant (once in-flight work drains):
/// `submitted == completed + failed` and sheds are counted separately —
/// a shed submission is *not* a session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Sessions admitted.
    pub submitted: u64,
    /// Sessions that reached `Completed`.
    pub completed: u64,
    /// Sessions that reached `Failed`.
    pub failed: u64,
    /// Submissions shed with [`SubmitError::Overloaded`].
    pub shed_overloaded: u64,
    /// Submissions shed with [`SubmitError::QuotaExceeded`].
    pub shed_quota: u64,
    /// Checkpoint migrations performed.
    pub migrations: u64,
    /// Host kills recorded (chaos policy and [`Service::kill_host`]).
    pub chaos_kills: u64,
    /// Host re-warms performed (fresh worker quads after a death).
    pub rewarms: u64,
}

/// One unit of schedulable work: a session, fresh or resuming from a
/// migrated checkpoint.
struct Work {
    id: SessionId,
    resume: Option<Box<Checkpoint>>,
    /// Hosts this session must not run on again (each failed it once).
    exclude: Vec<usize>,
    migrations: u32,
    /// Channel traffic accumulated on hosts it already ran on.
    stats: ChannelStats,
    /// Submission instant — deadlines are SLAs measured from here.
    enqueued: Instant,
}

struct SessionRecord {
    tenant: String,
    spec: SessionSpec,
    status: SessionStatus,
    snapshot: Option<(ParticleData, ParticleData)>,
}

struct SchedState {
    next_id: SessionId,
    queue: VecDeque<Work>,
    sessions: BTreeMap<SessionId, SessionRecord>,
    ledger: TenantLedger,
    /// Executor liveness by pool index (an exited executor serves
    /// nothing; eligibility must know).
    active: Vec<bool>,
    shutting_down: bool,
}

struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed_overloaded: AtomicU64,
    shed_quota: AtomicU64,
    migrations: AtomicU64,
}

struct Shared {
    cfg: ServiceConfig,
    state: Mutex<SchedState>,
    work_cv: Condvar,
    done_cv: Condvar,
    health: HealthBoard,
    kill_switches: Vec<Arc<AtomicBool>>,
    counters: Counters,
}

/// The multi-session service: admission control in front, a warm host
/// pool behind, the supervision ladder in between. See the crate docs
/// for the ladder; see [`ServiceCounters`] for the accounting contract.
pub struct Service {
    shared: Arc<Shared>,
    executors: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Start the service: spawn one executor per pool slot and warm
    /// every host.
    pub fn new(cfg: ServiceConfig) -> Service {
        assert!(cfg.pool_size > 0, "a service needs at least one host");
        let kill_switches: Vec<Arc<AtomicBool>> =
            (0..cfg.pool_size).map(|_| Arc::new(AtomicBool::new(false))).collect();
        let shared = Arc::new(Shared {
            health: HealthBoard::new(cfg.pool_size, cfg.strikes_to_dead),
            state: Mutex::new(SchedState {
                next_id: 1,
                queue: VecDeque::new(),
                sessions: BTreeMap::new(),
                ledger: TenantLedger::default(),
                active: vec![true; cfg.pool_size],
                shutting_down: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            kill_switches: kill_switches.clone(),
            counters: Counters {
                submitted: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                shed_overloaded: AtomicU64::new(0),
                shed_quota: AtomicU64::new(0),
                migrations: AtomicU64::new(0),
            },
            cfg,
        });
        let executors = (0..shared.cfg.pool_size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let kill = Arc::clone(&kill_switches[i]);
                std::thread::Builder::new()
                    .name(format!("jungle-host-{i}"))
                    .spawn(move || executor_main(shared, i, kill))
                    .expect("spawn executor thread")
            })
            .collect();
        Service { shared, executors }
    }

    /// Submit a session for `tenant`. Never blocks, never queues past
    /// the configured bounds — rejections are immediate and typed.
    pub fn submit(&self, tenant: &str, spec: SessionSpec) -> Result<SessionId, SubmitError> {
        let mut st = self.shared.state.lock().unwrap();
        if st.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        let queued_now = st.queue.len();
        if let Err(e) = st.ledger.try_admit(tenant, &self.shared.cfg.quota, queued_now) {
            match &e {
                SubmitError::Overloaded { .. } => {
                    self.shared.counters.shed_overloaded.fetch_add(1, Ordering::Relaxed)
                }
                _ => self.shared.counters.shed_quota.fetch_add(1, Ordering::Relaxed),
            };
            return Err(e);
        }
        let id = st.next_id;
        st.next_id += 1;
        st.sessions.insert(
            id,
            SessionRecord {
                tenant: tenant.to_string(),
                spec,
                status: SessionStatus::Queued,
                snapshot: None,
            },
        );
        st.queue.push_back(Work {
            id,
            resume: None,
            exclude: Vec::new(),
            migrations: 0,
            stats: ChannelStats::default(),
            enqueued: Instant::now(),
        });
        self.shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.work_cv.notify_one();
        Ok(id)
    }

    /// Current status of a session (`None` for unknown / forgotten ids).
    pub fn status(&self, id: SessionId) -> Option<SessionStatus> {
        self.shared.state.lock().unwrap().sessions.get(&id).map(|r| r.status.clone())
    }

    /// Block until the session reaches a terminal status and return it.
    pub fn wait(&self, id: SessionId) -> Option<SessionStatus> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            match st.sessions.get(&id) {
                None => return None,
                Some(r) if r.status.is_terminal() => return Some(r.status.clone()),
                Some(_) => st = self.shared.done_cv.wait(st).unwrap(),
            }
        }
    }

    /// Drop a terminal session's record (status and kept snapshot) so a
    /// long-lived service stays memory-bounded. No-op while the session
    /// is still in flight.
    pub fn forget(&self, id: SessionId) {
        let mut st = self.shared.state.lock().unwrap();
        if st.sessions.get(&id).is_some_and(|r| r.status.is_terminal()) {
            st.sessions.remove(&id);
        }
    }

    /// Stream a completed session's final snapshot as two wire-protocol
    /// `Particles` frames (stars, then gas) — the same bytes a worker
    /// puts on a socket, so any [`jc_amuse::wire::read_frame`] /
    /// [`jc_amuse::wire::decode_response`] consumer can read them.
    /// Returns `Ok(false)` when there is nothing to stream (unknown id,
    /// not completed, or the spec did not set
    /// [`SessionSpec::keep_snapshot`]).
    pub fn write_snapshot(&self, id: SessionId, w: &mut impl io::Write) -> io::Result<bool> {
        let frames = {
            let st = self.shared.state.lock().unwrap();
            match st.sessions.get(&id).and_then(|r| r.snapshot.as_ref()) {
                None => return Ok(false),
                Some((stars, gas)) => {
                    let mut buf = Vec::new();
                    let mut out = Vec::new();
                    wire::encode_response(&Response::Particles(stars.clone()), &mut buf);
                    out.extend_from_slice(&buf);
                    wire::encode_response(&Response::Particles(gas.clone()), &mut buf);
                    out.extend_from_slice(&buf);
                    out
                }
            }
        };
        w.write_all(&frames)?;
        Ok(true)
    }

    /// Trip host `i`'s kill switch: every call on it fails from now
    /// until its executor re-warms a fresh worker quad. Sessions on it
    /// migrate; this is the operator-facing end of the same path the
    /// chaos policy uses.
    pub fn kill_host(&self, i: usize) {
        if let Some(k) = self.shared.kill_switches.get(i) {
            k.store(true, Ordering::SeqCst);
            self.shared.health.record_kill(i);
        }
    }

    /// Current health of every pool slot.
    pub fn health(&self) -> Vec<HostHealth> {
        self.shared.health.snapshot()
    }

    /// Accounting snapshot.
    pub fn counters(&self) -> ServiceCounters {
        let c = &self.shared.counters;
        ServiceCounters {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            shed_overloaded: c.shed_overloaded.load(Ordering::Relaxed),
            shed_quota: c.shed_quota.load(Ordering::Relaxed),
            migrations: c.migrations.load(Ordering::Relaxed),
            chaos_kills: self.shared.health.chaos_kills(),
            rewarms: self.shared.health.generations(),
        }
    }

    /// Drain and stop: no new submissions, queued and running sessions
    /// finish (migrations included), executors exit, hosts are reaped.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutting_down = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
        self.shared.done_cv.notify_all();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Mark terminal, release the tenant's quota slot, bump counters, wake
/// waiters. The single funnel for both terminal states — quota release
/// happens exactly once per session.
fn finish(shared: &Shared, st: &mut SchedState, id: SessionId, status: SessionStatus) {
    let completed = matches!(status, SessionStatus::Completed { .. });
    if let Some(rec) = st.sessions.get_mut(&id) {
        let tenant = rec.tenant.clone();
        rec.status = status;
        st.ledger.release(&tenant);
    }
    if completed {
        shared.counters.completed.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.counters.failed.fetch_add(1, Ordering::Relaxed);
    }
    shared.done_cv.notify_all();
}

/// Does any active, non-excluded host remain for this work item?
fn has_eligible_host(st: &SchedState, w: &Work) -> bool {
    st.active.iter().enumerate().any(|(i, alive)| *alive && !w.exclude.contains(&i))
}

/// Fail every queued item that no host can serve any more — the queue
/// must never hold work that cannot make progress.
fn fail_stranded(shared: &Shared, st: &mut SchedState) {
    let any_active = st.active.iter().any(|a| *a);
    let mut i = 0;
    while i < st.queue.len() {
        if has_eligible_host(st, &st.queue[i]) {
            i += 1;
            continue;
        }
        if any_active {
            // stale exclude list, not a dead pool: hosts re-warm, so
            // make the item eligible again instead of failing it
            st.queue[i].exclude.clear();
            i += 1;
            continue;
        }
        let w = st.queue.remove(i).expect("index in bounds");
        let status = SessionStatus::Failed {
            failure: SessionFailure::NoHealthyHost,
            migrations: w.migrations,
        };
        finish(shared, st, w.id, status);
    }
}

fn executor_main(shared: Arc<Shared>, index: usize, kill: Arc<AtomicBool>) {
    let mut host =
        WarmHost::new(index, shared.cfg.host_kind.clone(), kill, shared.cfg.channel_retry);
    if let Err(e) = host.warm_up() {
        // stay in the loop: re-warm is retried per dequeued session
        eprintln!("jungle-service: host {index} failed to warm up: {e}");
        shared.health.record_failure(index);
    }
    loop {
        let work = {
            let mut st = shared.state.lock().unwrap();
            loop {
                fail_stranded(&shared, &mut st);
                if let Some(pos) = st.queue.iter().position(|w| !w.exclude.contains(&index)) {
                    break st.queue.remove(pos);
                }
                if st.shutting_down {
                    // drain complete for this executor (items excluding
                    // it belong to the others); retire from eligibility
                    st.active[index] = false;
                    fail_stranded(&shared, &mut st);
                    shared.work_cv.notify_all();
                    break None;
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        match work {
            Some(w) => run_session(&shared, index, &mut host, w),
            None => return,
        }
    }
}

/// Bridge config + initial checkpoint for a spec. The checkpoint is a
/// `SaveState` of freshly built local workers, so fresh placement and
/// migration are the *same* operation: restore onto a warm host.
fn initial_checkpoint(spec: &SessionSpec) -> Result<(BridgeConfig, Checkpoint), String> {
    let cluster = EmbeddedCluster::build(spec.stars, spec.gas, spec.gas_fraction, spec.seed);
    let mut cfg = cluster.bridge_config();
    cfg.substeps = spec.substeps;
    let (mut g, mut h, mut c, mut s) = cluster.local_workers(false);
    let save = |w: &mut Box<dyn ModelWorker>| match w.handle(Request::SaveState) {
        Response::State(st) => Ok(st),
        other => Err(format!("SaveState answered {other:?}")),
    };
    let ck = Checkpoint {
        time: 0.0,
        iterations: 0,
        total_supernovae: 0,
        gravity: save(&mut g)?,
        hydro: save(&mut h)?,
        coupling: save(&mut c)?,
        stellar: Some(save(&mut s)?),
    };
    Ok((cfg, ck))
}

/// Session bridge config for a resume (units are a pure function of the
/// spec, so this agrees with what the first placement used).
fn bridge_config_for(spec: &SessionSpec) -> BridgeConfig {
    let cluster = EmbeddedCluster::build(spec.stars, spec.gas, spec.gas_fraction, spec.seed);
    let mut cfg = cluster.bridge_config();
    cfg.substeps = spec.substeps;
    cfg
}

fn particles_of(state: &ModelState) -> Option<ParticleData> {
    match state {
        ModelState::Gravity { mass, pos, vel, .. } => {
            Some(ParticleData { mass: mass.clone(), pos: pos.clone(), vel: vel.clone() })
        }
        ModelState::Hydro { mass, pos, vel, .. } => {
            Some(ParticleData { mass: mass.clone(), pos: pos.clone(), vel: vel.clone() })
        }
        _ => None,
    }
}

/// How one placement of a session ended (before the scheduler decides
/// what that means for the session).
enum RunOutcome {
    /// All iterations done; final digest and optional kept snapshot.
    Done { iterations: u64, digest: u64, snapshot: Option<(ParticleData, ParticleData)> },
    /// The wall-clock budget ran out mid-run (host is healthy).
    OutOfTime,
}

/// Drive a leased bridge through the session. Any `Err` means this
/// *placement* failed (dead host, unrecoverable iteration) and the
/// scheduler should consult `ck_opt` for the last good checkpoint to
/// migrate with.
#[allow(clippy::too_many_arguments)]
fn drive(
    shared: &Shared,
    index: usize,
    host: &WarmHost,
    bridge: &mut Bridge,
    spec: &SessionSpec,
    deadline: Option<Instant>,
    ck: Checkpoint,
    ck_opt: &mut Option<Checkpoint>,
) -> Result<RunOutcome, String> {
    bridge.restore(&ck).map_err(|e| format!("restore failed: {e}"))?;
    *ck_opt = Some(ck);
    // a freshly restored session must not be re-killed at the exact
    // boundary it resumes from — only boundaries crossed on THIS host
    // count, or a migrated session could die on arrival forever
    let start = bridge.iterations();
    let over_deadline = || deadline.is_some_and(|d| Instant::now() >= d);
    while bridge.iterations() < spec.iterations {
        if over_deadline() {
            return Ok(RunOutcome::OutOfTime);
        }
        if let Some(chaos) = &shared.cfg.chaos {
            let done = bridge.iterations();
            let every = chaos.every_iterations.max(1);
            if done > start && done.is_multiple_of(every) {
                let round = spec.seed.wrapping_mul(1_000_003).wrapping_add(done / every);
                if chaos.plan.victim(round, shared.cfg.pool_size) == index {
                    host.trip_kill();
                    shared.health.record_kill(index);
                }
            }
        }
        bridge.iteration_recovering(ck_opt, &shared.cfg.recovery).map_err(|e| e.to_string())?;
    }
    // final state via the checkpoint path (never panics on a dead host —
    // errors escalate to migration like any other failure)
    let final_ck = bridge.snapshot().map_err(|e| format!("final snapshot failed: {e}"))?;
    let stars = particles_of(&final_ck.gravity)
        .ok_or_else(|| "gravity state has no particles".to_string())?;
    let gas =
        particles_of(&final_ck.hydro).ok_or_else(|| "hydro state has no particles".to_string())?;
    let digest = state_digest(&stars, &gas);
    let snapshot = spec.keep_snapshot.then_some((stars, gas));
    Ok(RunOutcome::Done { iterations: final_ck.iterations, digest, snapshot })
}

fn run_session(shared: &Shared, index: usize, host: &mut WarmHost, mut work: Work) {
    let spec = {
        let mut st = shared.state.lock().unwrap();
        let Some(rec) = st.sessions.get_mut(&work.id) else { return };
        rec.status = SessionStatus::Running { host: index, migrations: work.migrations };
        rec.spec.clone()
    };
    let budget_ms =
        if spec.deadline_ms > 0 { spec.deadline_ms } else { shared.cfg.default_deadline_ms };
    let deadline = (budget_ms > 0).then(|| work.enqueued + Duration::from_millis(budget_ms));
    let fail = |shared: &Shared, work: &Work, failure: SessionFailure| {
        let mut st = shared.state.lock().unwrap();
        let status = SessionStatus::Failed { failure, migrations: work.migrations };
        finish(shared, &mut st, work.id, status);
    };
    let over_deadline = |deadline: &Option<Instant>| deadline.is_some_and(|d| Instant::now() >= d);

    if over_deadline(&deadline) {
        return fail(shared, &work, SessionFailure::DeadlineExceeded { budget_ms });
    }

    // rung 0: make sure this host is a live worker quad at all
    if host.is_killed() || !host.is_warm() {
        match host.warm_up() {
            Ok(()) => shared.health.record_rewarm(index),
            Err(e) => {
                shared.health.record_failure(index);
                return migrate_or_fail(shared, index, work, e);
            }
        }
    }

    // checkpoint to place: the migrated state, or a fresh one
    let (cfg, ck) = match work.resume.take() {
        Some(ck) => (bridge_config_for(&spec), *ck),
        None => match initial_checkpoint(&spec) {
            Ok(pair) => pair,
            Err(e) => {
                // not a host fault — the spec itself could not be built
                return fail(shared, &work, SessionFailure::Unrecoverable { detail: e });
            }
        },
    };

    let quad = host.lease().expect("a warm host has its channel quad");
    let mut bridge = Bridge::new(quad.gravity, quad.hydro, quad.coupling, quad.stellar, cfg);
    if let Some(d) = deadline {
        let remaining = d.saturating_duration_since(Instant::now()).as_millis() as u64;
        bridge.set_request_deadline(remaining.max(1));
    }

    let mut ck_opt: Option<Checkpoint> = None;
    let outcome = drive(shared, index, host, &mut bridge, &spec, deadline, ck, &mut ck_opt);

    match outcome {
        Ok(RunOutcome::OutOfTime) => {
            // ran out of budget mid-run: the host is fine — return the
            // quad — but the session fails typed
            merge_bridge_stats(&mut work.stats, &bridge);
            release_quad(host, bridge);
            fail(shared, &work, SessionFailure::DeadlineExceeded { budget_ms });
        }
        Ok(RunOutcome::Done { iterations, digest, snapshot }) => {
            merge_bridge_stats(&mut work.stats, &bridge);
            release_quad(host, bridge);
            shared.health.record_success(index);
            let mut st = shared.state.lock().unwrap();
            if let Some(rec) = st.sessions.get_mut(&work.id) {
                rec.snapshot = snapshot;
            }
            let status = SessionStatus::Completed {
                iterations,
                migrations: work.migrations,
                digest,
                wall_ms: work.enqueued.elapsed().as_millis() as u64,
                stats: work.stats,
            };
            finish(shared, &mut st, work.id, status);
        }
        Err(detail) => {
            merge_bridge_stats(&mut work.stats, &bridge);
            // dead or untrusted quad: drop it with the bridge; the next
            // lease on this host re-warms a fresh one
            drop(bridge);
            if !host.is_killed() {
                // not a kill-switch death — strike the host on the board
                shared.health.record_failure(index);
            }
            // migrate with the last good checkpoint (None only if the
            // restore itself failed — then the next host rebuilds the
            // initial state from the spec, same result)
            work.resume = ck_opt.take().map(Box::new);
            migrate_or_fail(shared, index, work, detail);
        }
    }
}

/// Ladder rung 3→4: re-queue the session (with its last good
/// checkpoint) for any other host, or fail it typed. The failed host
/// re-warms lazily on its next dequeue.
fn migrate_or_fail(shared: &Shared, index: usize, mut work: Work, detail: String) {
    work.migrations += 1;
    if !work.exclude.contains(&index) {
        work.exclude.push(index);
    }
    let mut st = shared.state.lock().unwrap();
    if work.migrations > shared.cfg.max_migrations {
        let status = SessionStatus::Failed {
            failure: SessionFailure::Unrecoverable {
                detail: format!("migration budget spent ({}): {detail}", shared.cfg.max_migrations),
            },
            migrations: work.migrations,
        };
        return finish(shared, &mut st, work.id, status);
    }
    if !has_eligible_host(&st, &work) {
        if st.active.iter().any(|a| *a) {
            // every active host is on the exclude list, but killed
            // hosts re-warm on their next dequeue — the list is stale,
            // not the pool. Clear it and let the migration budget
            // bound the retries.
            work.exclude.clear();
        } else {
            let status = SessionStatus::Failed {
                failure: SessionFailure::NoHealthyHost,
                migrations: work.migrations,
            };
            return finish(shared, &mut st, work.id, status);
        }
    }
    if let Some(rec) = st.sessions.get_mut(&work.id) {
        rec.status = SessionStatus::Queued;
    }
    shared.counters.migrations.fetch_add(1, Ordering::Relaxed);
    st.queue.push_back(work);
    drop(st);
    shared.work_cv.notify_all();
}

fn merge_bridge_stats(total: &mut ChannelStats, bridge: &Bridge) {
    let (g, h, c, s) = bridge.channel_stats();
    total.merge(&g);
    total.merge(&h);
    total.merge(&c);
    if let Some(s) = s {
        total.merge(&s);
    }
}

fn release_quad(host: &mut WarmHost, bridge: Bridge) {
    let (gravity, hydro, coupling, stellar) = bridge.into_channels();
    host.release(HostChannels { gravity, hydro, coupling, stellar });
}
