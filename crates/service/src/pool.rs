//! Warm hosts: reusable worker quads, their guarded channels, and the
//! escalation-aware health board.
//!
//! A *host* is one warm quad of model workers (gravity, hydro,
//! coupling, stellar) that outlives the sessions it runs. Placement is
//! uniform across host kinds because every worker accepts
//! [`jc_amuse::worker::Request::LoadState`]: starting a session on a
//! warm host *is* a checkpoint restore, and migrating it to another
//! host is the same restore from the last good checkpoint.
//!
//! Every channel a host hands out is wrapped in a `GuardedChannel`
//! carrying the host's kill switch: chaos (or an operator) flips one
//! `AtomicBool` and every subsequent call on that host fails through
//! the *real* error path — the bridge sees worker errors, in-place
//! recovery finds `heal` refusing, and the scheduler's migration rung
//! takes over. No special-cased shortcuts.

use jc_amuse::channel::{Channel, ChannelStats};
use jc_amuse::worker::{ModelWorker, ParticleData, Request, Response};
use jc_amuse::{EmbeddedCluster, LocalChannel};
use jc_deploy::supervise::{ProcessSupervisor, WorkerSpec};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// What kind of workers a pool warms up.
#[derive(Clone, Debug)]
pub enum HostKind {
    /// Worker quads living in the service process (one per pool slot,
    /// each owned by its executor thread). The default: zero deploy
    /// footprint, ideal for tests and load generation.
    InProcess,
    /// Real `jungle-worker` processes, four per host, launched and
    /// reaped by a [`ProcessSupervisor`] with a port-file rendezvous.
    Process {
        /// Path to the `jungle-worker` binary.
        binary: PathBuf,
    },
}

/// One host's leased channel set, in [`jc_amuse::Bridge::new`] order.
pub(crate) struct HostChannels {
    pub(crate) gravity: Box<dyn Channel>,
    pub(crate) hydro: Box<dyn Channel>,
    pub(crate) coupling: Box<dyn Channel>,
    pub(crate) stellar: Option<Box<dyn Channel>>,
}

/// Channel wrapper enforcing the host kill switch at every call
/// boundary. While the switch is off it is a transparent delegate
/// (including the borrowing and two-phase fast paths, so warm in-process
/// hosts keep their allocation-free hot loop).
pub(crate) struct GuardedChannel {
    inner: Box<dyn Channel>,
    dead: Arc<AtomicBool>,
    /// A submit that found the host dead parks the error here so the
    /// matching collect fails without desyncing the inner channel.
    pending_dead: bool,
}

impl GuardedChannel {
    pub(crate) fn new(inner: Box<dyn Channel>, dead: Arc<AtomicBool>) -> GuardedChannel {
        GuardedChannel { inner, dead, pending_dead: false }
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    fn dead_response(&self) -> Response {
        Response::Error(format!("host killed ({})", self.inner.worker_name()))
    }
}

impl Channel for GuardedChannel {
    fn call(&mut self, req: Request) -> Response {
        if self.is_dead() {
            return self.dead_response();
        }
        self.inner.call(req)
    }

    fn submit(&mut self, req: Request) {
        if self.is_dead() {
            self.pending_dead = true;
            return;
        }
        self.inner.submit(req)
    }

    fn collect(&mut self) -> Response {
        if std::mem::take(&mut self.pending_dead) {
            return self.dead_response();
        }
        self.inner.collect()
    }

    fn stats(&self) -> ChannelStats {
        self.inner.stats()
    }

    fn worker_name(&self) -> String {
        self.inner.worker_name()
    }

    /// A killed host must not look healable — in-place recovery has to
    /// give up so the scheduler escalates to migration.
    fn heal(&mut self) -> bool {
        !self.is_dead() && self.inner.heal()
    }

    fn set_deadline(&mut self, deadline_ms: u64) {
        self.inner.set_deadline(deadline_ms)
    }

    fn pipelines(&self) -> bool {
        self.inner.pipelines()
    }

    fn snapshot_into(&mut self, out: &mut ParticleData) -> bool {
        !self.is_dead() && self.inner.snapshot_into(out)
    }

    fn kick_slice(&mut self, dv: &[[f64; 3]]) -> Response {
        if self.is_dead() {
            return self.dead_response();
        }
        self.inner.kick_slice(dv)
    }

    fn compute_kick_into(
        &mut self,
        targets: &[[f64; 3]],
        source_pos: &[[f64; 3]],
        source_mass: &[f64],
        out: &mut Vec<[f64; 3]>,
    ) -> Option<f64> {
        if self.is_dead() {
            return None;
        }
        self.inner.compute_kick_into(targets, source_pos, source_mass, out)
    }

    fn submit_snapshot(&mut self) {
        if self.is_dead() {
            self.pending_dead = true;
            return;
        }
        self.inner.submit_snapshot()
    }

    fn collect_snapshot_into(&mut self, out: &mut ParticleData) -> bool {
        !std::mem::take(&mut self.pending_dead) && self.inner.collect_snapshot_into(out)
    }

    fn submit_kick_slice(&mut self, dv: &[[f64; 3]]) {
        if self.is_dead() {
            self.pending_dead = true;
            return;
        }
        self.inner.submit_kick_slice(dv)
    }

    fn collect_kick(&mut self) -> Response {
        if std::mem::take(&mut self.pending_dead) {
            return self.dead_response();
        }
        self.inner.collect_kick()
    }

    fn submit_compute_kick(
        &mut self,
        targets: &[[f64; 3]],
        source_pos: &[[f64; 3]],
        source_mass: &[f64],
    ) {
        if self.is_dead() {
            self.pending_dead = true;
            return;
        }
        self.inner.submit_compute_kick(targets, source_pos, source_mass)
    }

    fn collect_accelerations_into(&mut self, out: &mut Vec<[f64; 3]>) -> Option<f64> {
        if std::mem::take(&mut self.pending_dead) {
            return None;
        }
        self.inner.collect_accelerations_into(out)
    }
}

/// One pool slot's health, as the board records it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostHealth {
    /// Serving normally.
    Healthy,
    /// Failed a session recently; still schedulable, but `strikes` more
    /// failures away from being declared dead.
    Suspect {
        /// Consecutive session failures recorded.
        strikes: u32,
    },
    /// Declared dead (kill switch or strike-out). Its executor re-warms
    /// a fresh worker quad before serving again.
    Dead,
}

/// The escalation-aware health registry: every host failure lands here,
/// and the scheduler consults it when deciding whether a session can
/// still go anywhere. Chaos kills are recorded per host so a soak can
/// audit that the fault plan actually bit.
pub(crate) struct HealthBoard {
    slots: Mutex<Vec<SlotHealth>>,
    strikes_to_dead: u32,
}

struct SlotHealth {
    health: HostHealth,
    /// Warm-up incarnation (bumped by every re-warm).
    generation: u64,
    chaos_kills: u64,
}

impl HealthBoard {
    pub(crate) fn new(size: usize, strikes_to_dead: u32) -> HealthBoard {
        let slots = (0..size)
            .map(|_| SlotHealth { health: HostHealth::Healthy, generation: 0, chaos_kills: 0 })
            .collect();
        HealthBoard { slots: Mutex::new(slots), strikes_to_dead: strikes_to_dead.max(1) }
    }

    /// A session failed on host `i`: escalate Healthy → Suspect → Dead.
    pub(crate) fn record_failure(&self, i: usize) -> HostHealth {
        let mut slots = self.slots.lock().unwrap();
        let h = &mut slots[i].health;
        *h = match *h {
            HostHealth::Healthy if self.strikes_to_dead > 1 => HostHealth::Suspect { strikes: 1 },
            HostHealth::Suspect { strikes } if strikes + 1 < self.strikes_to_dead => {
                HostHealth::Suspect { strikes: strikes + 1 }
            }
            _ => HostHealth::Dead,
        };
        *h
    }

    /// Host `i` was killed outright (chaos or operator): straight to
    /// Dead, no strike accounting.
    pub(crate) fn record_kill(&self, i: usize) {
        let mut slots = self.slots.lock().unwrap();
        slots[i].health = HostHealth::Dead;
        slots[i].chaos_kills += 1;
    }

    /// Host `i` completed a session cleanly.
    pub(crate) fn record_success(&self, i: usize) {
        self.slots.lock().unwrap()[i].health = HostHealth::Healthy;
    }

    /// Host `i` re-warmed a fresh worker quad.
    pub(crate) fn record_rewarm(&self, i: usize) {
        let mut slots = self.slots.lock().unwrap();
        slots[i].health = HostHealth::Healthy;
        slots[i].generation += 1;
    }

    /// Current health of every slot.
    pub(crate) fn snapshot(&self) -> Vec<HostHealth> {
        self.slots.lock().unwrap().iter().map(|s| s.health).collect()
    }

    /// Total chaos kills recorded across the pool.
    pub(crate) fn chaos_kills(&self) -> u64 {
        self.slots.lock().unwrap().iter().map(|s| s.chaos_kills).sum()
    }

    /// Total re-warm incarnations across the pool.
    pub(crate) fn generations(&self) -> u64 {
        self.slots.lock().unwrap().iter().map(|s| s.generation).sum()
    }
}

/// One warm host, owned by exactly one executor thread (channels never
/// cross threads; only checkpoints do). Holds the live channel quad
/// between leases and the supervisor for process-kind workers.
pub(crate) struct WarmHost {
    index: usize,
    kind: HostKind,
    kill: Arc<AtomicBool>,
    channels: Option<HostChannels>,
    supervisor: Option<ProcessSupervisor>,
    retry: jc_amuse::chaos::RetryPolicy,
}

impl WarmHost {
    pub(crate) fn new(
        index: usize,
        kind: HostKind,
        kill: Arc<AtomicBool>,
        retry: jc_amuse::chaos::RetryPolicy,
    ) -> WarmHost {
        WarmHost { index, kind, kill, channels: None, supervisor: None, retry }
    }

    /// Build (or rebuild) the worker quad. Clears the kill switch: a
    /// fresh incarnation starts alive.
    pub(crate) fn warm_up(&mut self) -> Result<(), String> {
        // reap any previous incarnation first (processes included)
        self.channels = None;
        self.supervisor = None;
        let guard = |inner: Box<dyn Channel>, kill: &Arc<AtomicBool>| -> Box<dyn Channel> {
            Box::new(GuardedChannel::new(inner, Arc::clone(kill)))
        };
        match &self.kind {
            HostKind::InProcess => {
                // placeholder initial conditions — every session restores
                // its own state over these before running
                let cluster = EmbeddedCluster::build(8, 32, 0.5, 0xC0FFEE + self.index as u64);
                let (g, h, c, s) = cluster.local_workers(false);
                let local = |w: Box<dyn ModelWorker>| -> Box<dyn Channel> {
                    Box::new(LocalChannel::new(w))
                };
                self.channels = Some(HostChannels {
                    gravity: guard(local(g), &self.kill),
                    hydro: guard(local(h), &self.kill),
                    coupling: guard(local(c), &self.kill),
                    stellar: Some(guard(local(s), &self.kill)),
                });
            }
            HostKind::Process { binary } => {
                let specs = ["gravity", "hydro", "coupling", "stellar"]
                    .into_iter()
                    .map(|model| WorkerSpec::new(binary.clone(), model))
                    .collect();
                let mut sup = ProcessSupervisor::new(specs, 0).with_retry(self.retry);
                let mut chans = sup.spawn_all().map_err(|e| {
                    format!("host {}: worker processes failed to launch: {e}", self.index)
                })?;
                // spawn_all returns spec order: gravity, hydro, coupling, stellar
                let stellar = chans.pop().unwrap();
                let coupling = chans.pop().unwrap();
                let hydro = chans.pop().unwrap();
                let gravity = chans.pop().unwrap();
                self.channels = Some(HostChannels {
                    gravity: guard(gravity, &self.kill),
                    hydro: guard(hydro, &self.kill),
                    coupling: guard(coupling, &self.kill),
                    stellar: Some(guard(stellar, &self.kill)),
                });
                self.supervisor = Some(sup);
            }
        }
        self.kill.store(false, Ordering::SeqCst);
        Ok(())
    }

    pub(crate) fn is_killed(&self) -> bool {
        self.kill.load(Ordering::SeqCst)
    }

    /// Trip this host's own kill switch (the chaos policy's self-kill).
    pub(crate) fn trip_kill(&self) {
        self.kill.store(true, Ordering::SeqCst);
    }

    pub(crate) fn is_warm(&self) -> bool {
        self.channels.is_some()
    }

    /// Lease the channel quad for one session.
    pub(crate) fn lease(&mut self) -> Option<HostChannels> {
        self.channels.take()
    }

    /// Return the quad after a clean session.
    pub(crate) fn release(&mut self, channels: HostChannels) {
        self.channels = Some(channels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local_guarded(dead: &Arc<AtomicBool>) -> GuardedChannel {
        let cluster = EmbeddedCluster::build(4, 8, 0.5, 1);
        let (g, _, _, _) = cluster.local_workers(false);
        GuardedChannel::new(Box::new(LocalChannel::new(g)), Arc::clone(dead))
    }

    #[test]
    fn guard_is_transparent_until_killed_then_fails_and_refuses_heal() {
        let dead = Arc::new(AtomicBool::new(false));
        let mut ch = local_guarded(&dead);
        assert!(matches!(ch.call(Request::Ping), Response::Ok { .. }));
        assert!(ch.heal());
        dead.store(true, Ordering::SeqCst);
        assert!(matches!(ch.call(Request::Ping), Response::Error(_)));
        assert!(!ch.heal(), "a killed host must not look healable");
        // two-phase paths fail without desyncing
        ch.submit(Request::Ping);
        assert!(matches!(ch.collect(), Response::Error(_)));
        let mut out = ParticleData::default();
        ch.submit_snapshot();
        assert!(!ch.collect_snapshot_into(&mut out));
    }

    #[test]
    fn health_board_escalates_and_recovers() {
        let board = HealthBoard::new(2, 2);
        assert_eq!(board.record_failure(0), HostHealth::Suspect { strikes: 1 });
        assert_eq!(board.record_failure(0), HostHealth::Dead);
        assert_eq!(board.snapshot()[1], HostHealth::Healthy);
        board.record_rewarm(0);
        assert_eq!(board.snapshot()[0], HostHealth::Healthy);
        assert_eq!(board.generations(), 1);
        board.record_kill(1);
        assert_eq!(board.snapshot()[1], HostHealth::Dead);
        assert_eq!(board.chaos_kills(), 1);
    }

    #[test]
    fn warm_host_leases_and_rewarm_resets_kill() {
        let kill = Arc::new(AtomicBool::new(false));
        let mut host = WarmHost::new(
            0,
            HostKind::InProcess,
            Arc::clone(&kill),
            jc_amuse::chaos::RetryPolicy::none(),
        );
        host.warm_up().expect("in-process warm-up is infallible");
        let quad = host.lease().expect("warm host has channels");
        assert!(host.lease().is_none(), "one lease at a time");
        host.release(quad);
        kill.store(true, Ordering::SeqCst);
        assert!(host.is_killed());
        host.warm_up().expect("re-warm");
        assert!(!host.is_killed(), "re-warm clears the kill switch");
        assert!(host.is_warm());
    }
}
