//! Checkpoint-based session migration under host kills.
//!
//! The service's core resilience claim: a session whose warm host dies
//! mid-run is migrated — restored from its last good checkpoint on a
//! healthy host — and still finishes **bitwise identical** to a run
//! that never saw a fault. Two ways to kill hosts are covered: a
//! directed `kill_host` (operator-style) and a seeded `FaultPlan`
//! sweep (chaos-style, the same plans `tests/chaos.rs` uses against
//! the supervisor).

use jc_amuse::FaultPlan;
use jc_service::{ChaosKillPolicy, Service, ServiceConfig, SessionSpec, SessionStatus};

/// Long enough that a kill lands mid-flight, small enough to stay fast.
fn long_spec(seed: u64) -> SessionSpec {
    SessionSpec { stars: 24, gas: 96, seed, iterations: 10, substeps: 2, ..SessionSpec::default() }
}

fn finish(status: Option<SessionStatus>) -> (u64, u32) {
    match status {
        Some(SessionStatus::Completed { digest, migrations, .. }) => (digest, migrations),
        other => panic!("expected Completed, got {other:?}"),
    }
}

/// The fault-free reference digest for a spec, computed through the
/// service itself on a calm single-host pool.
fn calm_digest(spec: &SessionSpec) -> u64 {
    let service = Service::new(ServiceConfig { pool_size: 1, ..ServiceConfig::default() });
    let id = service.submit("baseline", spec.clone()).expect("admitted");
    let (digest, migrations) = finish(service.wait(id));
    assert_eq!(migrations, 0, "baseline must be fault-free");
    service.shutdown();
    digest
}

#[test]
fn directed_kill_migrates_session_bitwise_identically() {
    let spec = long_spec(99);
    let want = calm_digest(&spec);

    let service = Service::new(ServiceConfig { pool_size: 2, ..ServiceConfig::default() });
    let id = service.submit("victim", spec).expect("admitted");
    // wait until the session is actually on a host, then pull the rug
    let host = loop {
        match service.status(id) {
            Some(SessionStatus::Running { host, .. }) => break host,
            Some(SessionStatus::Queued) => std::thread::yield_now(),
            other => panic!("session ended before it could be killed: {other:?}"),
        }
    };
    service.kill_host(host);
    let (digest, migrations) = finish(service.wait(id));
    assert_eq!(digest, want, "migrated session must be bitwise identical to fault-free run");
    // the kill may land after the final iteration, in which case the
    // session completes on the dying host's already-collected state —
    // but a kill mid-run must show up as a migration
    let counters = service.counters();
    assert_eq!(counters.chaos_kills, 1, "the directed kill is recorded");
    assert_eq!(counters.migrations as u32, migrations);

    // the killed host re-warms and serves again: saturate both hosts
    let a = service.submit("after", long_spec(7)).expect("admitted");
    let b = service.submit("after", long_spec(8)).expect("admitted");
    finish(service.wait(a));
    finish(service.wait(b));
    assert_eq!(service.counters().completed, 3);
    service.shutdown();
}

#[test]
fn chaos_kill_sweep_preserves_digests_across_migrations() {
    // the satellite soak: seeded FaultPlans self-kill warm hosts at
    // iteration boundaries; every completed session must still match
    // its chaos-free digest, and the sweep must actually exercise the
    // migration path at least once
    let specs: Vec<SessionSpec> = (0..4).map(|i| long_spec(300 + i)).collect();
    let want: Vec<u64> = specs.iter().map(calm_digest).collect();

    let mut total_migrations = 0u64;
    let mut total_kills = 0u64;
    for plan_seed in [1u64, 5, 11] {
        let service = Service::new(ServiceConfig {
            pool_size: 2,
            chaos: Some(ChaosKillPolicy {
                plan: FaultPlan::seeded(plan_seed),
                every_iterations: 3,
            }),
            ..ServiceConfig::default()
        });
        let ids: Vec<_> =
            specs.iter().map(|s| service.submit("chaos", s.clone()).expect("admitted")).collect();
        for (id, want) in ids.iter().zip(&want) {
            let (digest, _) = finish(service.wait(*id));
            assert_eq!(
                digest, *want,
                "plan seed {plan_seed}: session digest drifted under chaos kills"
            );
        }
        let c = service.counters();
        assert_eq!(c.completed, specs.len() as u64, "plan seed {plan_seed}: all must complete");
        assert_eq!(c.failed, 0, "plan seed {plan_seed}: chaos kills must never fail a session");
        total_migrations += c.migrations;
        total_kills += c.chaos_kills;
        service.shutdown();
    }
    assert!(
        total_kills > 0 && total_migrations > 0,
        "sweep must exercise the kill→migrate path (kills {total_kills}, migrations {total_migrations})"
    );
}
