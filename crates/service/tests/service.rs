//! Service-layer integration: typed admission control, warm-host
//! reuse equivalence, deadlines, and snapshot streaming.

use jc_amuse::worker::Response;
use jc_amuse::{wire, Bridge, EmbeddedCluster, LocalChannel, ModelState};
use jc_service::session::state_digest;
use jc_service::{
    QuotaPolicy, Service, ServiceConfig, SessionFailure, SessionSpec, SessionStatus, SubmitError,
};

fn small_spec(seed: u64) -> SessionSpec {
    SessionSpec { stars: 16, gas: 48, seed, iterations: 3, substeps: 2, ..SessionSpec::default() }
}

/// The golden reference: the same spec driven by a plain local bridge,
/// no service, no pool, no recovery machinery.
fn baseline_digest(spec: &SessionSpec) -> u64 {
    let cluster = EmbeddedCluster::build(spec.stars, spec.gas, spec.gas_fraction, spec.seed);
    let mut cfg = cluster.bridge_config();
    cfg.substeps = spec.substeps;
    let (g, h, c, s) = cluster.local_workers(false);
    let mut bridge = Bridge::new(
        Box::new(LocalChannel::new(g)),
        Box::new(LocalChannel::new(h)),
        Box::new(LocalChannel::new(c)),
        Some(Box::new(LocalChannel::new(s))),
        cfg,
    );
    for _ in 0..spec.iterations {
        bridge.try_iteration().expect("baseline iteration");
    }
    let ck = bridge.snapshot().expect("baseline snapshot");
    let particles = |state: &ModelState| match state {
        ModelState::Gravity { mass, pos, vel, .. } | ModelState::Hydro { mass, pos, vel, .. } => {
            jc_amuse::worker::ParticleData {
                mass: mass.clone(),
                pos: pos.clone(),
                vel: vel.clone(),
            }
        }
        other => panic!("state without particles: {}", other.kind()),
    };
    state_digest(&particles(&ck.gravity), &particles(&ck.hydro))
}

fn completed(status: Option<SessionStatus>) -> (u64, u32, u64) {
    match status {
        Some(SessionStatus::Completed { digest, migrations, wall_ms, .. }) => {
            (digest, migrations, wall_ms)
        }
        other => panic!("expected Completed, got {other:?}"),
    }
}

#[test]
fn warm_host_reuse_is_bitwise_equivalent_to_a_dedicated_bridge() {
    let service = Service::new(ServiceConfig { pool_size: 1, ..ServiceConfig::default() });
    let spec_a = small_spec(7);
    let spec_b = SessionSpec { stars: 24, gas: 32, seed: 8, ..small_spec(8) };
    // a → b → a: the second a must not see any residue of b (or of a)
    let a1 = service.submit("t", spec_a.clone()).expect("admit");
    let b = service.submit("t", spec_b.clone()).expect("admit");
    let a2 = service.submit("t", spec_a.clone()).expect("admit");
    let (da1, m1, _) = completed(service.wait(a1));
    let (db, _, _) = completed(service.wait(b));
    let (da2, m2, _) = completed(service.wait(a2));
    assert_eq!(m1, 0, "no migrations in a healthy pool");
    assert_eq!(m2, 0);
    assert_eq!(da1, da2, "same spec on the same warm host must agree bitwise");
    assert_ne!(da1, db, "different specs must not collide");
    assert_eq!(da1, baseline_digest(&spec_a), "service run == dedicated local bridge, bitwise");
    assert_eq!(db, baseline_digest(&spec_b));
    let c = service.counters();
    assert_eq!(c.submitted, 3);
    assert_eq!(c.completed, 3);
    assert_eq!((c.failed, c.migrations, c.chaos_kills), (0, 0, 0));
    service.shutdown();
}

#[test]
fn admission_sheds_typed_and_accounting_adds_up() {
    // one slow host, a tiny queue: the burst must shed — typed, no
    // panic, no unbounded queuing
    let service = Service::new(ServiceConfig {
        pool_size: 1,
        quota: QuotaPolicy { max_queue_depth: 2, per_tenant_in_flight: 100 },
        ..ServiceConfig::default()
    });
    let slow = SessionSpec { stars: 32, gas: 128, iterations: 6, ..SessionSpec::default() };
    let mut admitted = Vec::new();
    let mut shed = 0u64;
    for i in 0..12 {
        match service.submit(&format!("tenant-{}", i % 3), slow.clone()) {
            Ok(id) => admitted.push(id),
            Err(SubmitError::Overloaded { queued, limit }) => {
                assert!(queued >= limit, "overload must state its bound ({queued} vs {limit})");
                shed += 1;
            }
            Err(other) => panic!("unexpected rejection: {other}"),
        }
    }
    assert!(shed > 0, "a 12-burst into a depth-2 queue on one host must shed");
    for id in &admitted {
        completed(service.wait(*id));
    }
    let c = service.counters();
    assert_eq!(c.submitted, admitted.len() as u64);
    assert_eq!(c.completed, admitted.len() as u64);
    assert_eq!(c.shed_overloaded, shed);
    assert_eq!(c.failed, 0);
    service.shutdown();
}

#[test]
fn per_tenant_quota_rejects_typed_and_frees_on_completion() {
    let service = Service::new(ServiceConfig {
        pool_size: 1,
        quota: QuotaPolicy { max_queue_depth: 100, per_tenant_in_flight: 1 },
        ..ServiceConfig::default()
    });
    let slow = SessionSpec { stars: 32, gas: 128, iterations: 6, ..SessionSpec::default() };
    let first = service.submit("greedy", slow.clone()).expect("first in flight");
    match service.submit("greedy", slow.clone()) {
        Err(SubmitError::QuotaExceeded { tenant, in_flight: 1, limit: 1 }) => {
            assert_eq!(tenant, "greedy")
        }
        other => panic!("expected quota rejection, got {other:?}"),
    }
    // an unrelated tenant is unaffected by greedy's cap
    let other = service.submit("modest", small_spec(3)).expect("other tenant admitted");
    completed(service.wait(first));
    completed(service.wait(other));
    // the slot frees once the session is terminal
    let again = service.submit("greedy", small_spec(4)).expect("slot freed");
    completed(service.wait(again));
    assert_eq!(service.counters().shed_quota, 1);
    service.shutdown();
}

#[test]
fn session_deadline_fails_typed_and_host_survives() {
    let service = Service::new(ServiceConfig { pool_size: 1, ..ServiceConfig::default() });
    let doomed = SessionSpec {
        stars: 32,
        gas: 128,
        iterations: 10_000,
        deadline_ms: 1,
        ..SessionSpec::default()
    };
    let id = service.submit("t", doomed).expect("admitted");
    match service.wait(id) {
        Some(SessionStatus::Failed {
            failure: SessionFailure::DeadlineExceeded { budget_ms: 1 },
            ..
        }) => {}
        other => panic!("expected typed deadline failure, got {other:?}"),
    }
    // the host is unharmed: the next session completes normally
    let ok = service.submit("t", small_spec(5)).expect("admitted");
    let (digest, _, _) = completed(service.wait(ok));
    assert_eq!(digest, baseline_digest(&small_spec(5)));
    let c = service.counters();
    assert_eq!((c.completed, c.failed), (1, 1));
    assert_eq!(c.chaos_kills, 0, "a deadline is not a host failure");
    service.shutdown();
}

#[test]
fn completed_snapshot_streams_as_wire_frames() {
    let service = Service::new(ServiceConfig { pool_size: 1, ..ServiceConfig::default() });
    let spec = SessionSpec { keep_snapshot: true, ..small_spec(11) };
    let id = service.submit("t", spec.clone()).expect("admitted");
    let (digest, _, _) = completed(service.wait(id));

    let mut bytes = Vec::new();
    assert!(service.write_snapshot(id, &mut bytes).expect("stream"), "snapshot was kept");
    // the stream is plain wire protocol: two Particles frames
    let mut r: &[u8] = &bytes;
    let mut frame = Vec::new();
    let mut decoded = Vec::new();
    for _ in 0..2 {
        let n = wire::read_frame(&mut r, &mut frame).expect("frame");
        match wire::decode_response(&frame[..n]).expect("decode") {
            Response::Particles(p) => decoded.push(p),
            other => panic!("expected Particles, got {other:?}"),
        }
    }
    assert!(r.is_empty(), "exactly two frames");
    assert_eq!(decoded[0].mass.len(), spec.stars);
    assert_eq!(decoded[1].mass.len(), spec.gas);
    assert_eq!(state_digest(&decoded[0], &decoded[1]), digest, "streamed bytes == digested state");

    // sessions without keep_snapshot stream nothing
    let lean = service.submit("t", small_spec(12)).expect("admitted");
    completed(service.wait(lean));
    assert!(!service.write_snapshot(lean, &mut Vec::new()).expect("no snapshot"));
    // forget drops the record
    service.forget(id);
    assert!(service.status(id).is_none());
    service.shutdown();
}

#[test]
fn pool_of_two_drains_a_burst_deterministically() {
    // placement across two hosts must not leak into results: every
    // session's digest matches its single-host baseline
    let service = Service::new(ServiceConfig { pool_size: 2, ..ServiceConfig::default() });
    let specs: Vec<_> = (0..6).map(|i| small_spec(20 + i)).collect();
    let ids: Vec<_> =
        specs.iter().map(|s| service.submit("t", s.clone()).expect("admitted")).collect();
    for (id, spec) in ids.iter().zip(&specs) {
        let (digest, _, _) = completed(service.wait(*id));
        assert_eq!(digest, baseline_digest(spec), "digest independent of host placement");
    }
    assert_eq!(service.counters().completed, 6);
    service.shutdown();
}
