//! Zorilla peers: gossip membership and flood-based job scheduling.

use jc_netsim::compute::Device;
use jc_netsim::metrics::TrafficClass;
use jc_netsim::{Actor, ActorId, Ctx, Msg, SimDuration};
use rand::Rng;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Identifies a Zorilla job.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ZorillaJobId(pub u64);

/// A job submitted into the overlay.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Job id (unique per originating peer).
    pub id: ZorillaJobId,
    /// Work size in floating-point operations (modeled execution).
    pub flops: f64,
    /// Flood TTL: how many overlay hops the advertisement travels.
    pub ttl: u8,
}

/// Outcome of a job, reported at the originator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobOutcome {
    /// Executed by the given peer.
    Completed {
        /// The peer that ran the job.
        by: ActorId,
    },
    /// No peer claimed the job (TTL too small or everyone busy).
    Unclaimed,
}

/// Peer protocol messages.
pub enum PeerMsg {
    /// Membership gossip: sender's neighbor set.
    Gossip(Vec<ActorId>),
    /// Periodic gossip timer.
    GossipTick,
    /// A flooded job advertisement.
    Advertise {
        /// The job.
        job: JobSpec,
        /// The peer that owns the job.
        origin: ActorId,
        /// Hops remaining.
        ttl: u8,
    },
    /// `from` offers to run `job`.
    Claim {
        /// The job being claimed.
        job: ZorillaJobId,
        /// The claimant.
        from: ActorId,
    },
    /// The originator grants `job` to the claimant.
    Grant {
        /// The granted job.
        job: JobSpec,
    },
    /// Execution finished.
    Done {
        /// Which job.
        job: ZorillaJobId,
        /// Executing peer.
        by: ActorId,
    },
    /// Local job execution completed (self message).
    ExecFinished {
        /// Which job.
        job: JobSpec,
        /// Originator to notify.
        origin: ActorId,
    },
    /// Submit a job at this peer (sent by the GAT adapter / tests).
    Submit {
        /// The job to flood.
        job: JobSpec,
    },
    /// Deadline check: if the job is still unclaimed, report failure.
    ClaimDeadline(ZorillaJobId),
}

/// Shared observation point: job outcomes and membership per peer.
#[derive(Default)]
pub struct ProbeInner {
    /// Outcomes of jobs submitted anywhere.
    pub outcomes: HashMap<ZorillaJobId, JobOutcome>,
    /// Last published neighbor count per peer.
    pub membership: HashMap<ActorId, usize>,
}

/// Shared probe handle.
pub type PeerProbe = Rc<RefCell<ProbeInner>>;

/// A Zorilla peer: holds `slots` execution slots and participates in
/// gossip + flood scheduling.
pub struct PeerActor {
    label: String,
    neighbors: HashSet<ActorId>,
    seeds: Vec<ActorId>,
    slots: u32,
    busy: u32,
    gossip_interval: SimDuration,
    gossip_rounds_left: u64,
    /// Jobs we originated: id -> (spec, granted?, done?)
    my_jobs: HashMap<ZorillaJobId, (JobSpec, bool, bool)>,
    seen_ads: HashSet<ZorillaJobId>,
    probe: Option<PeerProbe>,
    /// How long the originator waits for claims before declaring the job
    /// unclaimed.
    claim_timeout: SimDuration,
}

impl PeerActor {
    /// Create a peer with `slots` concurrent job slots, bootstrapping from
    /// `seeds`.
    pub fn new(
        label: impl Into<String>,
        seeds: Vec<ActorId>,
        slots: u32,
        gossip_interval: SimDuration,
        gossip_rounds: u64,
    ) -> PeerActor {
        PeerActor {
            label: label.into(),
            neighbors: HashSet::new(),
            seeds,
            slots,
            busy: 0,
            gossip_interval,
            gossip_rounds_left: gossip_rounds,
            my_jobs: HashMap::new(),
            seen_ads: HashSet::new(),
            probe: None,
            claim_timeout: SimDuration::from_secs(2),
        }
    }

    /// Attach an observation probe.
    pub fn with_probe(mut self, probe: PeerProbe) -> PeerActor {
        self.probe = Some(probe);
        self
    }

    fn publish_membership(&self, ctx: &Ctx<'_>) {
        if let Some(p) = &self.probe {
            p.borrow_mut().membership.insert(ctx.id(), self.neighbors.len());
        }
    }

    fn flood(&mut self, ctx: &mut Ctx<'_>, job: JobSpec, origin: ActorId, ttl: u8) {
        if ttl == 0 {
            return;
        }
        let neighbors: Vec<ActorId> = self.neighbors.iter().copied().collect();
        for n in neighbors {
            if n == origin {
                continue;
            }
            ctx.send_net(
                n,
                512,
                TrafficClass::Control,
                PeerMsg::Advertise { job: job.clone(), origin, ttl: ttl - 1 },
            );
        }
    }
}

impl Actor for PeerActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for s in &self.seeds {
            self.neighbors.insert(*s);
        }
        self.publish_membership(ctx);
        if self.gossip_interval != SimDuration::ZERO && self.gossip_rounds_left > 0 {
            ctx.schedule_self(self.gossip_interval, PeerMsg::GossipTick);
        }
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let Ok((from, pm)) = msg.downcast::<PeerMsg>() else {
            return;
        };
        match pm {
            PeerMsg::Gossip(list) => {
                if let Some(f) = from {
                    self.neighbors.insert(f);
                }
                let me = ctx.id();
                for a in list {
                    if a != me {
                        self.neighbors.insert(a);
                    }
                }
                self.publish_membership(ctx);
            }
            PeerMsg::GossipTick => {
                let neighbors: Vec<ActorId> = self.neighbors.iter().copied().collect();
                if !neighbors.is_empty() {
                    let pick = neighbors[ctx.rng().gen_range(0..neighbors.len())];
                    let mut list: Vec<ActorId> = neighbors.clone();
                    list.push(ctx.id());
                    list.sort();
                    let bytes = 16 + 8 * list.len() as u64;
                    ctx.send_net(pick, bytes, TrafficClass::Control, PeerMsg::Gossip(list));
                }
                self.gossip_rounds_left = self.gossip_rounds_left.saturating_sub(1);
                if self.gossip_rounds_left > 0 {
                    ctx.schedule_self(self.gossip_interval, PeerMsg::GossipTick);
                }
            }
            PeerMsg::Submit { job } => {
                self.my_jobs.insert(job.id, (job.clone(), false, false));
                self.seen_ads.insert(job.id);
                let me = ctx.id();
                // Maybe we can run it ourselves: claim locally first.
                if self.busy < self.slots {
                    ctx.schedule_self(SimDuration::ZERO, PeerMsg::Claim { job: job.id, from: me });
                }
                let ttl = job.ttl;
                self.flood(ctx, job.clone(), me, ttl);
                ctx.schedule_self(self.claim_timeout, PeerMsg::ClaimDeadline(job.id));
            }
            PeerMsg::Advertise { job, origin, ttl } => {
                if !self.seen_ads.insert(job.id) {
                    return; // duplicate flood copy
                }
                if self.busy < self.slots {
                    ctx.send_net(
                        origin,
                        128,
                        TrafficClass::Control,
                        PeerMsg::Claim { job: job.id, from: ctx.id() },
                    );
                }
                self.flood(ctx, job, origin, ttl);
            }
            PeerMsg::Claim { job, from } => {
                if let Some((spec, granted, _done)) = self.my_jobs.get_mut(&job) {
                    if !*granted {
                        *granted = true;
                        let spec = spec.clone();
                        if from == ctx.id() {
                            // we granted the job to ourselves
                            ctx.schedule_self(SimDuration::ZERO, PeerMsg::Grant { job: spec });
                        } else {
                            ctx.send_net(
                                from,
                                256,
                                TrafficClass::Control,
                                PeerMsg::Grant { job: spec },
                            );
                        }
                    }
                }
            }
            PeerMsg::Grant { job } => {
                self.busy += 1;
                let d = ctx.compute(&Device::Cpu { threads: 1 }, job.flops, 0);
                let origin = from.unwrap_or(ctx.id());
                ctx.schedule_self(d, PeerMsg::ExecFinished { job, origin });
            }
            PeerMsg::ExecFinished { job, origin } => {
                self.busy = self.busy.saturating_sub(1);
                let me = ctx.id();
                if origin == me {
                    // local shortcut
                    ctx.schedule_self(SimDuration::ZERO, PeerMsg::Done { job: job.id, by: me });
                } else {
                    ctx.send_net(
                        origin,
                        128,
                        TrafficClass::Control,
                        PeerMsg::Done { job: job.id, by: me },
                    );
                }
            }
            PeerMsg::Done { job, by } => {
                if let Some((_, _, done)) = self.my_jobs.get_mut(&job) {
                    *done = true;
                    if let Some(p) = &self.probe {
                        p.borrow_mut().outcomes.insert(job, JobOutcome::Completed { by });
                    }
                }
            }
            PeerMsg::ClaimDeadline(job) => {
                if let Some((_, granted, _)) = self.my_jobs.get(&job) {
                    if !*granted {
                        if let Some(p) = &self.probe {
                            p.borrow_mut().outcomes.insert(job, JobOutcome::Unclaimed);
                        }
                    }
                }
            }
        }
    }

    fn name(&self) -> String {
        format!("zorilla:{}", self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jc_netsim::compute::CpuSpec;
    use jc_netsim::topology::HostSpec;
    use jc_netsim::{FirewallPolicy, HostId, Sim, SimConfig, Topology};

    fn star_sim(n: usize) -> (Sim, Vec<HostId>) {
        // one open site per peer, star topology around site 0
        let mut t = Topology::new();
        let hub_site = t.add_site("S0", "", FirewallPolicy::Open);
        let mut hosts = vec![t.add_host(HostSpec::node("h0", hub_site, CpuSpec::generic()))];
        for i in 1..n {
            let s = t.add_site(format!("S{i}"), "", FirewallPolicy::Open);
            t.add_link(hub_site, s, SimDuration::from_millis(1), 1.0, "l");
            hosts.push(t.add_host(HostSpec::node(format!("h{i}"), s, CpuSpec::generic())));
        }
        (Sim::new(t, SimConfig::default()), hosts)
    }

    fn deploy_peers(
        sim: &mut Sim,
        hosts: &[HostId],
        slots: u32,
        probe: &PeerProbe,
    ) -> Vec<ActorId> {
        let mut peers = Vec::new();
        let first = sim.add_actor(
            hosts[0],
            Box::new(
                PeerActor::new("p0", vec![], slots, SimDuration::from_millis(20), 30)
                    .with_probe(probe.clone()),
            ),
        );
        peers.push(first);
        for (i, &h) in hosts.iter().enumerate().skip(1) {
            let p = sim.add_actor(
                h,
                Box::new(
                    PeerActor::new(
                        format!("p{i}"),
                        vec![first],
                        slots,
                        SimDuration::from_millis(20),
                        30,
                    )
                    .with_probe(probe.clone()),
                ),
            );
            peers.push(p);
        }
        peers
    }

    #[test]
    fn membership_gossip_spreads() {
        let (mut sim, hosts) = star_sim(6);
        let probe: PeerProbe = Default::default();
        let peers = deploy_peers(&mut sim, &hosts, 1, &probe);
        sim.run_to_quiescence(1_000_000);
        let m = &probe.borrow().membership;
        // every peer should have discovered most of the overlay
        for p in &peers {
            let known = m.get(p).copied().unwrap_or(0);
            assert!(known >= 3, "peer {p:?} knows only {known} neighbors");
        }
    }

    #[test]
    fn flooded_job_is_claimed_once_and_completes() {
        let (mut sim, hosts) = star_sim(5);
        let probe: PeerProbe = Default::default();
        let peers = deploy_peers(&mut sim, &hosts, 1, &probe);
        // Let gossip converge first.
        sim.run_until(jc_netsim::SimTime(1_000_000_000));
        let job = JobSpec { id: ZorillaJobId(7), flops: 1e9, ttl: 3 };
        sim.post(peers[1], PeerMsg::Submit { job }, SimDuration::ZERO);
        sim.run_to_quiescence(2_000_000);
        let outcome = probe.borrow().outcomes.get(&ZorillaJobId(7)).copied();
        assert!(
            matches!(outcome, Some(JobOutcome::Completed { .. })),
            "job not completed: {outcome:?}"
        );
    }

    #[test]
    fn busy_overlay_leaves_job_unclaimed() {
        // Single isolated peer with zero slots: nothing can run the job.
        let (mut sim, hosts) = star_sim(1);
        let probe: PeerProbe = Default::default();
        let p = sim.add_actor(
            hosts[0],
            Box::new(
                PeerActor::new("p0", vec![], 0, SimDuration::ZERO, 0).with_probe(probe.clone()),
            ),
        );
        let job = JobSpec { id: ZorillaJobId(1), flops: 1e6, ttl: 2 };
        sim.post(p, PeerMsg::Submit { job }, SimDuration::ZERO);
        sim.run_to_quiescence(100_000);
        assert_eq!(probe.borrow().outcomes.get(&ZorillaJobId(1)), Some(&JobOutcome::Unclaimed));
    }

    #[test]
    fn ttl_bounds_flood_reach() {
        // Chain topology: p0 - p1 - p2 - p3 (neighbors only adjacent).
        let (mut sim, hosts) = star_sim(4);
        let probe: PeerProbe = Default::default();
        // Build chain manually: each peer only seeds its predecessor and
        // no gossip, so neighbor sets stay a chain.
        let mut peers: Vec<ActorId> = Vec::new();
        for (i, &h) in hosts.iter().enumerate() {
            let seeds = if i == 0 { vec![] } else { vec![peers[i - 1]] };
            let p = sim.add_actor(
                h,
                Box::new(
                    PeerActor::new(format!("p{i}"), seeds, 0, SimDuration::ZERO, 0)
                        .with_probe(probe.clone()),
                ),
            );
            peers.push(p);
        }
        // Peer 3 has a slot; submit at peer 0 with ttl 1 (reaches only p... wait,
        // chain via seeds: p1 knows p0, p2 knows p1... flooding goes via
        // *neighbors*, and seeds are one-directional; p0 has no neighbors,
        // so the ad goes nowhere and the job stays unclaimed.
        let job = JobSpec { id: ZorillaJobId(9), flops: 1e6, ttl: 1 };
        sim.post(peers[0], PeerMsg::Submit { job }, SimDuration::ZERO);
        sim.run_to_quiescence(100_000);
        assert_eq!(probe.borrow().outcomes.get(&ZorillaJobId(9)), Some(&JobOutcome::Unclaimed));
    }

    #[test]
    fn local_submit_runs_locally_when_free() {
        let (mut sim, hosts) = star_sim(1);
        let probe: PeerProbe = Default::default();
        let p = sim.add_actor(
            hosts[0],
            Box::new(
                PeerActor::new("p0", vec![], 2, SimDuration::ZERO, 0).with_probe(probe.clone()),
            ),
        );
        let job = JobSpec { id: ZorillaJobId(2), flops: 2e9, ttl: 0 };
        sim.post(p, PeerMsg::Submit { job }, SimDuration::ZERO);
        sim.run_to_quiescence(100_000);
        match probe.borrow().outcomes.get(&ZorillaJobId(2)) {
            Some(JobOutcome::Completed { by }) => assert_eq!(*by, p),
            other => panic!("{other:?}"),
        }
        // 2e9 flops at 2 GFLOP/s = 1 s of compute
        assert!(sim.metrics().host_busy(hosts[0]).as_secs_f64() >= 1.0);
    }
}
