//! # jc-zorilla — peer-to-peer grid middleware
//!
//! Reproduction of Zorilla (Drost et al. \[4\]; §3 of the paper): *"a
//! prototype middleware based on Peer-to-Peer techniques. Zorilla is ideal
//! in cases where no middleware is available, and can turn any collection
//! of machines into a cluster-like system in minutes."*
//!
//! Peers form an unstructured overlay by membership gossip. Job submission
//! uses *flood scheduling*: a job advertisement floods the overlay with a
//! TTL; peers with free slots race to claim it from the originator, which
//! grants the job to the first claimant (one grant per job). Completion is
//! reported back to the originator.
//!
//! The GAT `zorilla` adapter (crate `jc-gat`) submits jobs through
//! [`PeerActor`]s, which is how the paper's stack uses Zorilla when no
//! conventional middleware is installed on a resource.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod peer;

pub use peer::{JobOutcome, JobSpec, PeerActor, PeerMsg, PeerProbe, ZorillaJobId};
