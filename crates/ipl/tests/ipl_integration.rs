//! Integration tests: IPL instances over the simulated jungle.

use jc_ipl::registry::RegistryActor;
use jc_ipl::{IbisConfig, IbisInstance, IplEvent, Payload, RegistryHandle};
use jc_netsim::compute::CpuSpec;
use jc_netsim::metrics::TrafficClass;
use jc_netsim::topology::HostSpec;
use jc_netsim::{
    Actor, ActorId, Ctx, FirewallPolicy, HostId, Msg, Sim, SimConfig, SimDuration, SimTime,
    Topology,
};
use jc_smartsockets::Overlay;
use std::cell::RefCell;
use std::rc::Rc;

/// Shared observation log for test assertions.
type Log = Rc<RefCell<Vec<String>>>;

/// A minimal IPL application actor: joins, optionally connects to a peer
/// named `target` once it appears, sends one message, logs everything.
struct Peer {
    ipl: IbisInstance,
    log: Log,
    send_to: Option<String>,
    payload_bytes: u64,
}

enum PeerCmd {
    Elect(String),
    SignalAll(String),
    Leave,
}

impl Actor for Peer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.ipl.join(ctx);
        self.ipl.create_receive_port("in");
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match msg.downcast::<PeerCmd>() {
            Ok((_, cmd)) => {
                match cmd {
                    PeerCmd::Elect(name) => self.ipl.elect(ctx, name),
                    PeerCmd::SignalAll(s) => self.ipl.signal(ctx, vec![], s),
                    PeerCmd::Leave => self.ipl.leave(ctx),
                }
                return;
            }
            Err(m) => m,
        };
        if let Ok(events) = self.ipl.handle_msg(ctx, msg) {
            for ev in events {
                match ev {
                    IplEvent::JoinAck { members } => {
                        self.log.borrow_mut().push(format!("joined({})", members.len()));
                        self.try_connect_and_send(ctx);
                    }
                    IplEvent::Joined(m) => {
                        self.log.borrow_mut().push(format!("member+:{}", m.name));
                        self.try_connect_and_send(ctx);
                    }
                    IplEvent::Left(m) => {
                        self.log.borrow_mut().push(format!("member-:{}", m.name));
                    }
                    IplEvent::Died(m) => {
                        self.log.borrow_mut().push(format!("died:{}", m.name));
                    }
                    IplEvent::Upcall { port, from, payload } => {
                        self.log.borrow_mut().push(format!(
                            "recv:{}:{}:{}",
                            port,
                            from.name,
                            payload.wire_size()
                        ));
                    }
                    IplEvent::Elected { name, winner } => {
                        self.log.borrow_mut().push(format!("elected:{}:{}", name, winner.name));
                    }
                    IplEvent::Signal { from, content } => {
                        self.log.borrow_mut().push(format!("signal:{}:{}", from.name, content));
                    }
                }
            }
        }
    }

    fn name(&self) -> String {
        "peer".into()
    }
}

impl Peer {
    fn try_connect_and_send(&mut self, ctx: &mut Ctx<'_>) {
        let Some(target_name) = self.send_to.clone() else { return };
        let Some(target) = self.ipl.members().iter().find(|m| m.name == target_name).cloned()
        else {
            return;
        };
        let port = jc_ipl::ReceivePortName::new("in");
        if let Ok((pid, _setup)) = self.ipl.connect(ctx, &target, &port) {
            self.ipl.send(
                ctx,
                pid,
                Payload::bytes(vec![0u8; self.payload_bytes as usize]),
                TrafficClass::Ipl,
            );
            self.send_to = None; // send once
        }
    }
}

struct World {
    sim: Sim,
    registry: RegistryHandle,
    overlay: Rc<Overlay>,
    hosts: Vec<HostId>,
}

fn build_world() -> World {
    let mut t = Topology::new();
    let amsterdam = t.add_site("VU", "Amsterdam", FirewallPolicy::Open);
    let delft = t.add_site("TUD", "Delft", FirewallPolicy::FirewalledInbound);
    let leiden = t.add_site("LU", "Leiden", FirewallPolicy::Nat);
    t.add_link(amsterdam, delft, SimDuration::from_millis(2), 10.0, "STARplane");
    t.add_link(amsterdam, leiden, SimDuration::from_millis(1), 1.0, "1G");
    t.add_link(delft, leiden, SimDuration::from_millis(2), 1.0, "1G");
    let h_ams = t.add_host(HostSpec::node("fs0.vu", amsterdam, CpuSpec::generic()).as_front_end());
    let h_del = t.add_host(HostSpec::node("fs0.tud", delft, CpuSpec::generic()).as_front_end());
    let h_lei = t.add_host(HostSpec::node("fs0.lu", leiden, CpuSpec::generic()).as_front_end());
    let mut sim = Sim::new(t, SimConfig::default());
    let overlay = Rc::new(Overlay::deploy(
        &mut sim,
        &[(amsterdam, h_ams), (delft, h_del), (leiden, h_lei)],
        SimDuration::from_millis(20),
        5,
    ));
    let reg = sim.add_actor(h_ams, Box::new(RegistryActor::new("amuse")));
    World {
        sim,
        registry: RegistryHandle { actor: reg },
        overlay,
        hosts: vec![h_ams, h_del, h_lei],
    }
}

fn peer(world: &World, name: &str, log: Log, send_to: Option<&str>) -> Peer {
    Peer {
        ipl: IbisInstance::new(IbisConfig {
            name: name.into(),
            pool: "amuse".into(),
            registry: world.registry,
            overlay: Some(world.overlay.clone()),
        }),
        log,
        send_to: send_to.map(String::from),
        payload_bytes: 1024,
    }
}

#[test]
fn join_connect_send_across_firewall() {
    let mut w = build_world();
    let log: Log = Default::default();
    // sender on open site, receiver behind firewall in Delft: needs reverse setup
    let receiver = peer(&w, "receiver", log.clone(), None);
    let sender = peer(&w, "sender", log.clone(), Some("receiver"));
    w.sim.add_actor(w.hosts[1], Box::new(receiver));
    w.sim.add_actor(w.hosts[0], Box::new(sender));
    w.sim.run_to_quiescence(1_000_000);
    let entries = log.borrow();
    assert!(
        entries.iter().any(|e| e == "recv:in:sender:1024"),
        "receiver got the message: {entries:?}"
    );
}

#[test]
fn firewalled_to_nat_uses_relay_and_delivers() {
    let mut w = build_world();
    let log: Log = Default::default();
    let receiver = peer(&w, "receiver", log.clone(), None); // NAT site
    let sender = peer(&w, "sender", log.clone(), Some("receiver")); // firewalled site
    w.sim.add_actor(w.hosts[2], Box::new(receiver));
    w.sim.add_actor(w.hosts[1], Box::new(sender));
    w.sim.run_to_quiescence(1_000_000);
    let entries = log.borrow();
    assert!(entries.iter().any(|e| e == "recv:in:sender:1024"), "relofayed delivery: {entries:?}");
}

#[test]
fn crash_produces_died_event() {
    let mut w = build_world();
    let log: Log = Default::default();
    let a = peer(&w, "a", log.clone(), None);
    let b = peer(&w, "b", log.clone(), None);
    w.sim.add_actor(w.hosts[0], Box::new(a));
    let _ = w.sim.add_actor(w.hosts[1], Box::new(b));
    w.sim.run_until(SimTime(1_000_000_000));
    // Crash Delft's front-end (where b lives).
    w.sim.crash_host_at(w.hosts[1], SimTime(1_500_000_000));
    w.sim.run_to_quiescence(1_000_000);
    let entries = log.borrow();
    assert!(entries.iter().any(|e| e == "died:b"), "a saw b die: {entries:?}");
}

#[test]
fn election_first_candidate_wins() {
    let mut w = build_world();
    let log: Log = Default::default();
    let a = peer(&w, "a", log.clone(), None);
    let b = peer(&w, "b", log.clone(), None);
    let ai = w.sim.add_actor(w.hosts[0], Box::new(a));
    let bi = w.sim.add_actor(w.hosts[1], Box::new(b));
    w.sim.run_until(SimTime(1_000_000_000));
    w.sim.post(ai, PeerCmd::Elect("coupler".into()), SimDuration::ZERO);
    w.sim.run_until(SimTime(2_000_000_000));
    w.sim.post(bi, PeerCmd::Elect("coupler".into()), SimDuration::ZERO);
    w.sim.run_to_quiescence(1_000_000);
    let entries = log.borrow();
    let elected: Vec<&String> = entries.iter().filter(|e| e.starts_with("elected:")).collect();
    assert!(!elected.is_empty());
    assert!(elected.iter().all(|e| e.ends_with(":a")), "first candidate wins: {entries:?}");
}

#[test]
fn signal_broadcast_reaches_all_members() {
    let mut w = build_world();
    let log: Log = Default::default();
    let a = peer(&w, "a", log.clone(), None);
    let b = peer(&w, "b", log.clone(), None);
    let c = peer(&w, "c", log.clone(), None);
    let ai = w.sim.add_actor(w.hosts[0], Box::new(a));
    w.sim.add_actor(w.hosts[1], Box::new(b));
    w.sim.add_actor(w.hosts[2], Box::new(c));
    w.sim.run_until(SimTime(1_000_000_000));
    w.sim.post(ai, PeerCmd::SignalAll("checkpoint".into()), SimDuration::ZERO);
    w.sim.run_to_quiescence(1_000_000);
    let entries = log.borrow();
    let sigs = entries.iter().filter(|e| e.starts_with("signal:a:checkpoint")).count();
    assert_eq!(sigs, 3, "all three members (incl. sender) get the signal: {entries:?}");
}

#[test]
fn graceful_leave_broadcasts_left() {
    let mut w = build_world();
    let log: Log = Default::default();
    let a = peer(&w, "a", log.clone(), None);
    let b = peer(&w, "b", log.clone(), None);
    w.sim.add_actor(w.hosts[0], Box::new(a));
    let bi = w.sim.add_actor(w.hosts[1], Box::new(b));
    w.sim.run_until(SimTime(1_000_000_000));
    w.sim.post(bi, PeerCmd::Leave, SimDuration::ZERO);
    w.sim.run_to_quiescence(1_000_000);
    let entries = log.borrow();
    assert!(entries.iter().any(|e| e == "member-:b"), "{entries:?}");
}

#[test]
fn traffic_is_accounted_as_ipl_class() {
    let mut w = build_world();
    let log: Log = Default::default();
    let receiver = peer(&w, "receiver", log.clone(), None);
    let sender = peer(&w, "sender", log, Some("receiver"));
    w.sim.add_actor(w.hosts[1], Box::new(receiver));
    w.sim.add_actor(w.hosts[0], Box::new(sender));
    w.sim.run_to_quiescence(1_000_000);
    let total_ipl: u64 = w
        .sim
        .metrics()
        .link_traffic()
        .iter()
        .filter(|(_, c, _)| *c == TrafficClass::Ipl)
        .map(|(_, _, b)| *b)
        .sum();
    assert!(total_ipl >= 1024, "IPL bytes on WAN links: {total_ipl}");
}

/// Determinism: the whole IPL + smartsockets + registry stack must produce
/// identical logs on identical seeds.
#[test]
fn full_stack_is_deterministic() {
    let run = || {
        let mut w = build_world();
        let log: Log = Default::default();
        let receiver = peer(&w, "receiver", log.clone(), None);
        let sender = peer(&w, "sender", log.clone(), Some("receiver"));
        w.sim.add_actor(w.hosts[2], Box::new(receiver));
        w.sim.add_actor(w.hosts[0], Box::new(sender));
        w.sim.run_to_quiescence(1_000_000);
        let v = log.borrow().clone();
        (v, w.sim.now().as_nanos())
    };
    let (la, ta) = run();
    let (lb, tb) = run();
    assert_eq!(la, lb);
    assert_eq!(ta, tb);
}

/// ActorId is unused directly but keeps the import list honest if the test
/// file grows.
#[allow(dead_code)]
fn _type_check(_: ActorId) {}
