//! # jc-ipl — the Ibis Portability Layer
//!
//! Reproduction of IPL (van Nieuwpoort et al.; §3 of the paper): *"a
//! communication library specifically designed for use in a Jungle. IPL is
//! based on the concept of uni-directional connection-oriented message-based
//! communication. It provides support for fault-tolerance and malleability
//! [...] an application using IPL will get notified if a machine crashes,
//! allowing the application to react to and recover from this fault."*
//!
//! The pieces:
//!
//! * [`registry::RegistryActor`] — the central registry every Ibis instance
//!   joins. Tracks membership, broadcasts join/leave/died events (died
//!   events come from watching simulated host crashes), runs first-wins
//!   elections, and forwards signals. This models the Ibis server process.
//! * [`ibis::IbisInstance`] — the per-process endpoint, embedded *inside* a
//!   user actor (the Ibis daemon, a worker proxy, ...). It is a library,
//!   not an actor: the owning actor forwards incoming messages to
//!   [`ibis::IbisInstance::handle_msg`] and reacts to the returned
//!   [`event::IplEvent`]s.
//! * [`port`] — send/receive ports: uni-directional,
//!   connection-oriented, message-based ports. A send port connects to one
//!   or more named receive ports (one-to-many); receive ports accept any
//!   number of senders (many-to-one). Connections are planned through
//!   SmartSockets, so firewalled/NATed paths transparently use reverse or
//!   relayed setup.
//! * [`message`] — message payloads: raw bytes or typed objects with a
//!   declared simulated wire size.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod event;
pub mod ibis;
pub mod message;
pub mod port;
pub mod registry;

pub use event::IplEvent;
pub use ibis::{IbisConfig, IbisIdentifier, IbisInstance};
pub use message::Payload;
pub use port::{PortId, ReceivePortName};
pub use registry::{RegistryActor, RegistryHandle};
