//! Send and receive ports: IPL's uni-directional message channels.

use crate::ibis::IbisIdentifier;
use jc_smartsockets::VirtualSocket;

/// Name of a receive port (unique within one Ibis instance).
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ReceivePortName(pub String);

impl ReceivePortName {
    /// Construct a port name.
    pub fn new(s: impl Into<String>) -> ReceivePortName {
        ReceivePortName(s.into())
    }
}

impl std::fmt::Display for ReceivePortName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifies a send port within one Ibis instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PortId(pub usize);

/// One established connection of a send port.
pub(crate) struct PortConnection {
    /// The remote instance (kept for monitoring/debug views).
    #[allow(dead_code)]
    pub to: IbisIdentifier,
    /// Remote receive port.
    pub port: ReceivePortName,
    /// The underlying SmartSockets connection.
    pub socket: VirtualSocket,
}

/// A uni-directional send port. Supports one-to-many: connecting to several
/// receive ports turns every send into a multicast (used by the Ibis daemon
/// to broadcast control messages to all worker proxies).
pub(crate) struct SendPort {
    #[allow(dead_code)]
    pub id: PortId,
    pub connections: Vec<PortConnection>,
    pub bytes_sent: u64,
    pub messages_sent: u64,
}

impl SendPort {
    pub fn new(id: PortId) -> SendPort {
        SendPort { id, connections: Vec::new(), bytes_sent: 0, messages_sent: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_name_display() {
        assert_eq!(ReceivePortName::new("amuse.worker.1").to_string(), "amuse.worker.1");
    }

    #[test]
    fn send_port_starts_empty() {
        let p = SendPort::new(PortId(0));
        assert!(p.connections.is_empty());
        assert_eq!(p.bytes_sent, 0);
    }
}
