//! The IPL registry: membership, elections, signals, fault notification.
//!
//! Models the Ibis server/registry process. Every [`crate::IbisInstance`]
//! joins a named pool; the registry broadcasts pool events (joins, graceful
//! leaves, deaths) to all members, providing the *malleability* and
//! *fault-tolerance* the paper attributes to IPL.

use crate::ibis::IbisIdentifier;
use jc_netsim::actor::EngineNotice;
use jc_netsim::metrics::TrafficClass;
use jc_netsim::{Actor, ActorId, Ctx, Msg};
use std::collections::HashMap;

/// Control-plane sizes (bytes) used for traffic accounting.
pub(crate) const CTRL_MSG_BYTES: u64 = 256;

/// Messages instances send to the registry.
#[derive(Debug)]
pub enum RegistryMsg {
    /// Join the pool.
    Join(IbisIdentifier),
    /// Leave the pool gracefully.
    Leave(u64),
    /// Stand for election `name`.
    Elect {
        /// Election name (e.g. `"server"`).
        name: String,
        /// The candidate.
        candidate: IbisIdentifier,
    },
    /// Ask the registry to forward a signal.
    Signal {
        /// Sender.
        from: IbisIdentifier,
        /// Target instance ids (empty = broadcast).
        targets: Vec<u64>,
        /// Signal content.
        content: String,
    },
}

/// Events the registry pushes to pool members.
#[derive(Debug, Clone)]
pub enum PoolEvent {
    /// Acknowledgement of a join, with current membership.
    JoinAck(Vec<IbisIdentifier>),
    /// Someone joined.
    Joined(IbisIdentifier),
    /// Someone left gracefully.
    Left(IbisIdentifier),
    /// Someone's host crashed.
    Died(IbisIdentifier),
    /// Election decided (first candidate wins, Ibis semantics).
    Elected {
        /// Election name.
        name: String,
        /// Winner.
        winner: IbisIdentifier,
    },
    /// A forwarded signal.
    Signal {
        /// Originating instance.
        from: IbisIdentifier,
        /// Content.
        content: String,
    },
}

/// Address of a deployed registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegistryHandle {
    /// The registry actor.
    pub actor: ActorId,
}

/// The registry actor. Place it on a well-connected host (the paper runs
/// the Ibis server alongside the user's coupler machine).
pub struct RegistryActor {
    pool: String,
    members: Vec<IbisIdentifier>,
    elections: HashMap<String, IbisIdentifier>,
    events_broadcast: u64,
}

impl RegistryActor {
    /// Create a registry for a named pool.
    pub fn new(pool: impl Into<String>) -> RegistryActor {
        RegistryActor {
            pool: pool.into(),
            members: Vec::new(),
            elections: HashMap::new(),
            events_broadcast: 0,
        }
    }

    fn broadcast(&mut self, ctx: &mut Ctx<'_>, ev: PoolEvent, exclude: Option<u64>) {
        for m in &self.members {
            if Some(m.id) == exclude {
                continue;
            }
            ctx.send_net(m.actor, CTRL_MSG_BYTES, TrafficClass::Control, ev.clone());
            self.events_broadcast += 1;
        }
    }
}

impl Actor for RegistryActor {
    fn handle(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        // Host-crash notifications for watched member hosts.
        let msg = match msg.downcast::<EngineNotice>() {
            Ok((_, EngineNotice::WatchedHostCrashed(host))) => {
                let dead: Vec<IbisIdentifier> =
                    self.members.iter().filter(|m| m.host == host).cloned().collect();
                self.members.retain(|m| m.host != host);
                for d in dead {
                    self.broadcast(ctx, PoolEvent::Died(d), None);
                }
                return;
            }
            Ok(_) => return,
            Err(m) => m,
        };
        let Ok((_, rm)) = msg.downcast::<RegistryMsg>() else {
            return;
        };
        match rm {
            RegistryMsg::Join(ident) => {
                assert_eq!(ident.pool, self.pool, "instance joined wrong pool");
                self.members.push(ident.clone());
                ctx.watch_host(ident.host);
                // Ack to the joiner with full membership...
                ctx.send_net(
                    ident.actor,
                    CTRL_MSG_BYTES + 64 * self.members.len() as u64,
                    TrafficClass::Control,
                    PoolEvent::JoinAck(self.members.clone()),
                );
                // ...and announce to everyone else.
                self.broadcast(ctx, PoolEvent::Joined(ident.clone()), Some(ident.id));
            }
            RegistryMsg::Leave(id) => {
                if let Some(pos) = self.members.iter().position(|m| m.id == id) {
                    let left = self.members.remove(pos);
                    self.broadcast(ctx, PoolEvent::Left(left), None);
                }
            }
            RegistryMsg::Elect { name, candidate } => {
                let winner =
                    self.elections.entry(name.clone()).or_insert_with(|| candidate.clone()).clone();
                self.broadcast(ctx, PoolEvent::Elected { name, winner }, None);
            }
            RegistryMsg::Signal { from, targets, content } => {
                let recipients: Vec<IbisIdentifier> = self
                    .members
                    .iter()
                    .filter(|m| targets.is_empty() || targets.contains(&m.id))
                    .cloned()
                    .collect();
                for r in recipients {
                    ctx.send_net(
                        r.actor,
                        CTRL_MSG_BYTES + content.len() as u64,
                        TrafficClass::Control,
                        PoolEvent::Signal { from: from.clone(), content: content.clone() },
                    );
                    self.events_broadcast += 1;
                }
            }
        }
    }

    fn name(&self) -> String {
        format!("ipl-registry:{}", self.pool)
    }
}
