//! Message payloads carried by IPL connections.

use std::any::Any;

/// A message payload: either raw bytes (as a real IPL write message would
/// carry) or a typed in-simulation object with a declared wire size.
///
/// Typed payloads keep the simulated stack free of serialization while
/// still accounting the correct number of bytes on every link.
pub enum Payload {
    /// Raw bytes.
    Bytes(bytes::Bytes),
    /// A typed object plus the size it would occupy on the wire.
    Object {
        /// The object.
        value: Box<dyn Any>,
        /// Simulated serialized size in bytes.
        wire_size: u64,
    },
}

impl Payload {
    /// Wrap a typed value with a declared wire size.
    pub fn object(value: impl Any, wire_size: u64) -> Payload {
        Payload::Object { value: Box::new(value), wire_size }
    }

    /// Wrap raw bytes.
    pub fn bytes(data: impl Into<bytes::Bytes>) -> Payload {
        Payload::Bytes(data.into())
    }

    /// The simulated wire size.
    pub fn wire_size(&self) -> u64 {
        match self {
            Payload::Bytes(b) => b.len() as u64,
            Payload::Object { wire_size, .. } => *wire_size,
        }
    }

    /// Try to view the payload as a typed object reference.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        match self {
            Payload::Object { value, .. } => value.downcast_ref(),
            Payload::Bytes(_) => None,
        }
    }

    /// Try to take the payload as a typed object.
    pub fn downcast<T: Any>(self) -> Result<T, Payload> {
        match self {
            Payload::Object { value, wire_size } => match value.downcast::<T>() {
                Ok(v) => Ok(*v),
                Err(value) => Err(Payload::Object { value, wire_size }),
            },
            other => Err(other),
        }
    }

    /// Raw bytes view, if this is a byte payload.
    pub fn as_bytes(&self) -> Option<&bytes::Bytes> {
        match self {
            Payload::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Payload::Bytes(b) => write!(f, "Payload::Bytes({} B)", b.len()),
            Payload::Object { wire_size, .. } => write!(f, "Payload::Object({wire_size} B)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_payload_size() {
        let p = Payload::bytes(vec![0u8; 128]);
        assert_eq!(p.wire_size(), 128);
        assert_eq!(p.as_bytes().unwrap().len(), 128);
    }

    #[test]
    fn object_payload_round_trip() {
        let p = Payload::object(vec![1.0f64, 2.0], 16);
        assert_eq!(p.wire_size(), 16);
        assert_eq!(p.downcast_ref::<Vec<f64>>().unwrap().len(), 2);
        let v: Vec<f64> = p.downcast().unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
    }

    #[test]
    fn downcast_wrong_type_returns_payload() {
        let p = Payload::object(5u32, 4);
        let p = p.downcast::<String>().unwrap_err();
        assert_eq!(p.wire_size(), 4);
    }
}
