//! The per-process IPL endpoint, embedded inside a user actor.

use crate::event::IplEvent;
use crate::message::Payload;
use crate::port::{PortConnection, PortId, ReceivePortName, SendPort};
use crate::registry::{PoolEvent, RegistryHandle, RegistryMsg, CTRL_MSG_BYTES};
use jc_netsim::metrics::TrafficClass;
use jc_netsim::{ActorId, Ctx, HostId, Msg, SimDuration};
use jc_smartsockets::{
    hub::unwrap_message, ConnectionPlan, Overlay, VirtualAddress, VirtualSocket,
};
use std::collections::HashSet;
use std::rc::Rc;

/// Identity of one Ibis instance in a pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IbisIdentifier {
    /// Unique id within the pool.
    pub id: u64,
    /// Human-readable name (e.g. `"daemon"`, `"proxy-gadget-3"`).
    pub name: String,
    /// Pool name.
    pub pool: String,
    /// Host the instance runs on.
    pub host: HostId,
    /// The actor embedding the instance.
    pub actor: ActorId,
}

/// Configuration for creating an [`IbisInstance`].
#[derive(Clone)]
pub struct IbisConfig {
    /// Instance name.
    pub name: String,
    /// Pool to join.
    pub pool: String,
    /// The registry to join through.
    pub registry: RegistryHandle,
    /// The SmartSockets overlay used for connection planning (optional:
    /// without it only open paths work — like running Ibis without hubs).
    pub overlay: Option<Rc<Overlay>>,
}

/// The wire format of an IPL message between two instances.
pub(crate) struct IplWire {
    pub to_port: ReceivePortName,
    pub from: IbisIdentifier,
    pub payload: Payload,
}

/// Error connecting a send port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectError {
    /// SmartSockets found no way to reach the target.
    Unreachable,
    /// The instance has not joined the pool yet.
    NotJoined,
}

static NEXT_INSTANCE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// The IPL endpoint. Owned by an embedding actor, which must forward all
/// unrecognized incoming messages to [`IbisInstance::handle_msg`].
pub struct IbisInstance {
    cfg: IbisConfig,
    ident: Option<IbisIdentifier>,
    members: Vec<IbisIdentifier>,
    receive_ports: HashSet<ReceivePortName>,
    send_ports: Vec<SendPort>,
    joined: bool,
}

impl IbisInstance {
    /// Create an instance (not yet joined).
    pub fn new(cfg: IbisConfig) -> IbisInstance {
        IbisInstance {
            cfg,
            ident: None,
            members: Vec::new(),
            receive_ports: HashSet::new(),
            send_ports: Vec::new(),
            joined: false,
        }
    }

    /// This instance's identifier (available after [`IbisInstance::join`]).
    pub fn identifier(&self) -> Option<&IbisIdentifier> {
        self.ident.as_ref()
    }

    /// Current known pool membership.
    pub fn members(&self) -> &[IbisIdentifier] {
        &self.members
    }

    /// Join the pool through the registry. Call from the embedding actor's
    /// `on_start` (or later); the `JoinAck` arrives as an [`IplEvent`].
    pub fn join(&mut self, ctx: &mut Ctx<'_>) {
        let ident = IbisIdentifier {
            id: NEXT_INSTANCE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            name: self.cfg.name.clone(),
            pool: self.cfg.pool.clone(),
            host: ctx.host(),
            actor: ctx.id(),
        };
        self.ident = Some(ident.clone());
        ctx.send_net(
            self.cfg.registry.actor,
            CTRL_MSG_BYTES,
            TrafficClass::Control,
            RegistryMsg::Join(ident),
        );
    }

    /// Leave the pool gracefully.
    pub fn leave(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(id) = &self.ident {
            ctx.send_net(
                self.cfg.registry.actor,
                CTRL_MSG_BYTES,
                TrafficClass::Control,
                RegistryMsg::Leave(id.id),
            );
        }
        self.joined = false;
    }

    /// Declare a named receive port; messages addressed to it surface as
    /// [`IplEvent::Upcall`].
    pub fn create_receive_port(&mut self, name: impl Into<String>) -> ReceivePortName {
        let n = ReceivePortName::new(name);
        self.receive_ports.insert(n.clone());
        n
    }

    /// Create a send port and connect it to `port` on instance `to`.
    /// Returns the port id and the modeled connection-setup latency.
    ///
    /// One-to-many: call [`IbisInstance::connect_also`] to add more targets.
    pub fn connect(
        &mut self,
        ctx: &mut Ctx<'_>,
        to: &IbisIdentifier,
        port: &ReceivePortName,
    ) -> Result<(PortId, SimDuration), ConnectError> {
        let id = PortId(self.send_ports.len());
        let mut sp = SendPort::new(id);
        let setup = self.attach(ctx, &mut sp, to, port)?;
        self.send_ports.push(sp);
        Ok((id, setup))
    }

    /// Add another target to an existing send port (multicast).
    pub fn connect_also(
        &mut self,
        ctx: &mut Ctx<'_>,
        port_id: PortId,
        to: &IbisIdentifier,
        port: &ReceivePortName,
    ) -> Result<SimDuration, ConnectError> {
        let mut sp = std::mem::replace(&mut self.send_ports[port_id.0], SendPort::new(port_id));
        let result = self.attach(ctx, &mut sp, to, port);
        self.send_ports[port_id.0] = sp;
        result
    }

    fn attach(
        &mut self,
        ctx: &mut Ctx<'_>,
        sp: &mut SendPort,
        to: &IbisIdentifier,
        port: &ReceivePortName,
    ) -> Result<SimDuration, ConnectError> {
        let me = self.ident.as_ref().ok_or(ConnectError::NotJoined)?.clone();
        let from_addr = VirtualAddress::new(me.host, me.id as u16);
        let to_addr = VirtualAddress::new(to.host, to.id as u16);
        let overlay = self.cfg.overlay.clone();
        let plan = ConnectionPlan::plan(ctx.topo(), overlay.as_deref(), from_addr, to_addr);
        if !plan.is_usable() {
            return Err(ConnectError::Unreachable);
        }
        let setup = plan.setup_latency;
        sp.connections.push(PortConnection {
            to: to.clone(),
            port: port.clone(),
            socket: VirtualSocket::new(plan, to.actor),
        });
        Ok(setup)
    }

    /// Send a message on a send port (to *all* its connected receive
    /// ports). `class` tags the traffic for the monitoring views.
    pub fn send(&mut self, ctx: &mut Ctx<'_>, port: PortId, payload: Payload, class: TrafficClass) {
        let me = self.ident.clone().expect("send before join");
        let sp = &mut self.send_ports[port.0];
        let n = sp.connections.len();
        assert!(n > 0, "send on unconnected port");
        let size = payload.wire_size();
        sp.bytes_sent += size * n as u64;
        sp.messages_sent += 1;
        if n == 1 {
            let conn = &mut sp.connections[0];
            let wire = IplWire { to_port: conn.port.clone(), from: me, payload };
            conn.socket.send(ctx, size + 64, class, wire);
            return;
        }
        // Multicast of typed payloads: payloads are not clonable in
        // general, so multicast is only supported for byte payloads.
        match payload {
            Payload::Bytes(b) => {
                for conn in &mut sp.connections {
                    let wire = IplWire {
                        to_port: conn.port.clone(),
                        from: me.clone(),
                        payload: Payload::Bytes(b.clone()),
                    };
                    conn.socket.send(ctx, size + 64, class, wire);
                }
            }
            Payload::Object { .. } => {
                panic!("multicast of typed payloads unsupported; send bytes")
            }
        }
    }

    /// Number of connections on a send port.
    pub fn fan_out(&self, port: PortId) -> usize {
        self.send_ports[port.0].connections.len()
    }

    /// Stand for an election.
    pub fn elect(&mut self, ctx: &mut Ctx<'_>, name: impl Into<String>) {
        let me = self.ident.clone().expect("elect before join");
        ctx.send_net(
            self.cfg.registry.actor,
            CTRL_MSG_BYTES,
            TrafficClass::Control,
            RegistryMsg::Elect { name: name.into(), candidate: me },
        );
    }

    /// Send a signal to specific members (empty = broadcast).
    pub fn signal(&mut self, ctx: &mut Ctx<'_>, targets: Vec<u64>, content: impl Into<String>) {
        let me = self.ident.clone().expect("signal before join");
        ctx.send_net(
            self.cfg.registry.actor,
            CTRL_MSG_BYTES,
            TrafficClass::Control,
            RegistryMsg::Signal { from: me, targets, content: content.into() },
        );
    }

    /// Feed an incoming actor message through the IPL layer. Returns the
    /// IPL events it produced, or gives the message back (`Err`) if it does
    /// not belong to IPL (the embedding actor's own protocol).
    pub fn handle_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) -> Result<Vec<IplEvent>, Msg> {
        // Pool events from the registry.
        let msg = match unwrap_message::<PoolEvent>(msg) {
            Ok((_, ev)) => {
                return Ok(self.on_pool_event(ev));
            }
            Err(m) => m,
        };
        // Data messages.
        match unwrap_message::<IplWire>(msg) {
            Ok((_, wire)) => {
                if self.receive_ports.contains(&wire.to_port) {
                    Ok(vec![IplEvent::Upcall {
                        port: wire.to_port,
                        from: wire.from,
                        payload: wire.payload,
                    }])
                } else {
                    // Message for a port we never declared: dropped, as a
                    // real IPL connection to a missing port would fail.
                    Ok(vec![])
                }
            }
            Err(m) => Err(m),
        }
    }

    fn on_pool_event(&mut self, ev: PoolEvent) -> Vec<IplEvent> {
        match ev {
            PoolEvent::JoinAck(members) => {
                self.joined = true;
                self.members = members.clone();
                vec![IplEvent::JoinAck { members }]
            }
            PoolEvent::Joined(m) => {
                if !self.members.iter().any(|x| x.id == m.id) {
                    self.members.push(m.clone());
                }
                vec![IplEvent::Joined(m)]
            }
            PoolEvent::Left(m) => {
                self.members.retain(|x| x.id != m.id);
                vec![IplEvent::Left(m)]
            }
            PoolEvent::Died(m) => {
                self.members.retain(|x| x.id != m.id);
                vec![IplEvent::Died(m)]
            }
            PoolEvent::Elected { name, winner } => vec![IplEvent::Elected { name, winner }],
            PoolEvent::Signal { from, content } => vec![IplEvent::Signal { from, content }],
        }
    }
}
