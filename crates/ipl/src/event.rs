//! Events an Ibis instance surfaces to its owning actor.

use crate::ibis::IbisIdentifier;
use crate::message::Payload;
use crate::port::ReceivePortName;

/// What happened inside the IPL layer, delivered to the embedding actor by
/// [`crate::ibis::IbisInstance::handle_msg`].
#[derive(Debug)]
pub enum IplEvent {
    /// A message arrived on one of our receive ports (the IPL "upcall").
    Upcall {
        /// The receive port it arrived on.
        port: ReceivePortName,
        /// The sending instance.
        from: IbisIdentifier,
        /// The message payload.
        payload: Payload,
    },
    /// A new instance joined the pool (malleability).
    Joined(IbisIdentifier),
    /// An instance left the pool gracefully.
    Left(IbisIdentifier),
    /// An instance died — its host crashed. This is the fault-tolerance
    /// notification the paper highlights.
    Died(IbisIdentifier),
    /// Result of an election we participated in (or observed).
    Elected {
        /// Election name.
        name: String,
        /// Winning instance.
        winner: IbisIdentifier,
    },
    /// A signal string forwarded by the registry.
    Signal {
        /// Originating instance.
        from: IbisIdentifier,
        /// Signal content.
        content: String,
    },
    /// We successfully joined the registry; the pool membership at join
    /// time is included.
    JoinAck {
        /// Members known at join time (including self).
        members: Vec<IbisIdentifier>,
    },
}
