//! Failure injection: kill a shard worker mid-iteration and prove the
//! recovered run is bitwise-identical to one that never failed.
//!
//! This is the acceptance test for the fault-tolerant runtime: the
//! paper's §5 says *"if one worker crashes, the entire simulation
//! crashes"* — here a worker crashes and the simulation finishes with
//! the exact same bits. Two transports are exercised:
//!
//! * loopback TCP (`spawn_flaky_tcp_worker`): the server vanishes
//!   mid-conversation after a deterministic number of requests, the
//!   supervisor respawns a fresh process-equivalent server, and the
//!   bridge restores its checkpoint and replays;
//! * in-process `LocalChannel`s with a crashing worker wrapper and *no*
//!   supervisor: the dead shard is excluded and the pool re-partitions
//!   over the survivors.

use jungle::amuse::channel::{Channel, LocalChannel};
use jungle::amuse::shard::ShardedChannel;
use jungle::amuse::socket::{spawn_flaky_tcp_worker, spawn_tcp_worker, WorkerFleet};
use jungle::amuse::worker::{
    CouplingWorker, GravityWorker, HydroWorker, ModelWorker, ParticleData, Request, Response,
    StellarWorker,
};
use jungle::amuse::{
    Bridge, BridgeConfig, Checkpoint, EmbeddedCluster, RecoveryPolicy, SocketChannel,
};
use jungle::nbody::Backend;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

const ITERATIONS: u32 = 4;
/// Iterations completed before the victim's fuse is armed.
const CLEAN_ITERATIONS: u32 = 2;
/// Requests the victim still serves after arming — small enough that it
/// dies inside the next iteration's kick fan-out.
const FUSE: i64 = 5;

fn cluster() -> EmbeddedCluster {
    EmbeddedCluster::build(32, 128, 0.5, 17)
}

fn config(c: &EmbeddedCluster) -> BridgeConfig {
    let mut cfg = c.bridge_config();
    cfg.substeps = 4;
    cfg.stellar_interval = 2;
    cfg
}

fn bitwise_eq(a: &ParticleData, b: &ParticleData) -> bool {
    let f = |x: &[f64], y: &[f64]| {
        x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
    };
    let v = |x: &[[f64; 3]], y: &[[f64; 3]]| {
        x.len() == y.len()
            && x.iter().zip(y).all(|(p, q)| (0..3).all(|k| p[k].to_bits() == q[k].to_bits()))
    };
    f(&a.mass, &b.mass) && v(&a.pos, &b.pos) && v(&a.vel, &b.vel)
}

/// The uninterrupted reference: everything in process, no failures.
fn baseline() -> (ParticleData, ParticleData, u32, f64) {
    let c = cluster();
    let mut bridge = Bridge::new(
        Box::new(LocalChannel::new(Box::new(GravityWorker::new(c.stars.clone(), Backend::Scalar)))),
        Box::new(LocalChannel::new(Box::new(HydroWorker::new(c.gas.clone())))),
        Box::new(LocalChannel::new(Box::new(CouplingWorker::fi()))),
        Some(Box::new(LocalChannel::new(Box::new(StellarWorker::new(
            c.star_masses_msun.clone(),
            0.02,
        ))))),
        config(&c),
    );
    for _ in 0..ITERATIONS {
        bridge.iteration();
    }
    let (stars, gas) = bridge.snapshots();
    (stars, gas, bridge.total_supernovae(), bridge.model_time())
}

#[test]
fn tcp_shard_killed_mid_iteration_recovers_bitwise() {
    let (ref_stars, ref_gas, ref_sn, ref_time) = baseline();

    for k in 1..=3usize {
        let c = cluster();
        // Fleet first, so it drops *after* the bridge on every exit
        // path: a panicking assertion below unwinds through the
        // bridge's Stop frames, then the fleet shuts down and joins
        // whatever is left — including supervisor respawns — instead of
        // leaking server threads blocked in accept.
        let fleet = Rc::new(RefCell::new(WorkerFleet::new()));

        // the healthy single workers
        let (stars_ics, gas_ics, imf) =
            (c.stars.clone(), c.gas.clone(), c.star_masses_msun.clone());
        let (g_addr, g_h) =
            spawn_tcp_worker("grav", move || GravityWorker::new(stars_ics, Backend::Scalar));
        fleet.borrow_mut().adopt(g_addr, g_h);
        let (h_addr, h_h) = spawn_tcp_worker("hydro", move || HydroWorker::new(gas_ics));
        fleet.borrow_mut().adopt(h_addr, h_h);
        let (s_addr, s_h) = spawn_tcp_worker("sse", move || StellarWorker::new(imf, 0.02));
        fleet.borrow_mut().adopt(s_addr, s_h);

        // the coupling pool: K flaky servers, one of which will be shot
        let victim = (3 + 7 * k) % k;
        let fuses: Vec<Arc<AtomicI64>> =
            (0..k).map(|_| Arc::new(AtomicI64::new(i64::MAX))).collect();
        let shards: Vec<Box<dyn Channel>> = (0..k)
            .map(|i| {
                let (addr, h) =
                    spawn_flaky_tcp_worker(format!("fi-{i}"), CouplingWorker::fi, fuses[i].clone());
                fleet.borrow_mut().adopt(addr, h);
                Box::new(SocketChannel::connect(addr, format!("fi-{i}")).expect("connect shard"))
                    as Box<dyn Channel>
            })
            .collect();

        // supervisor: respawn a dead shard as a fresh (healthy) server
        let fleet_c = fleet.clone();
        let supervisor = move |i: usize| -> Option<Box<dyn Channel>> {
            let (addr, h) = spawn_tcp_worker(format!("fi-{i}-respawn"), CouplingWorker::fi);
            fleet_c.borrow_mut().adopt(addr, h);
            Some(Box::new(SocketChannel::connect(addr, format!("fi-{i}-respawn")).ok()?)
                as Box<dyn Channel>)
        };
        let pool =
            ShardedChannel::with_counts(shards, vec![0; k]).with_supervisor(Box::new(supervisor));

        let mut bridge = Bridge::new(
            Box::new(SocketChannel::connect(g_addr, "grav").expect("connect gravity")),
            Box::new(SocketChannel::connect(h_addr, "hydro").expect("connect hydro")),
            Box::new(pool),
            Some(Box::new(SocketChannel::connect(s_addr, "sse").expect("connect stellar"))),
            config(&c),
        );

        let policy = RecoveryPolicy { max_retries: 2, checkpoint_interval: 1 };
        let mut checkpoint: Option<Checkpoint> = None;
        let mut recoveries = 0u32;
        for i in 0..ITERATIONS {
            if i == CLEAN_ITERATIONS {
                // arm the fuse: the victim dies a few requests into this
                // iteration's kick fan-out
                fuses[victim].store(FUSE, Ordering::SeqCst);
            }
            let (_rep, rec) = bridge
                .iteration_recovering(&mut checkpoint, &policy)
                .unwrap_or_else(|e| panic!("k={k}: {e}"));
            recoveries += rec;
        }
        assert!(recoveries >= 1, "k={k}: the kill must actually trigger a recovery");

        let (stars, gas) = bridge.snapshots();
        assert_eq!(bridge.model_time().to_bits(), ref_time.to_bits(), "k={k}");
        assert_eq!(bridge.total_supernovae(), ref_sn, "k={k}");
        assert!(bitwise_eq(&stars, &ref_stars), "k={k}: star state diverged");
        assert!(bitwise_eq(&gas, &ref_gas), "k={k}: gas state diverged");

        drop(bridge); // Stop frames shut the healthy servers down
        fleet.borrow_mut().join_all().expect("every server exits cleanly");
    }
}

/// A worker that serves `fuse` requests, then answers only errors — the
/// in-process image of a dead node.
struct CrashAfter {
    inner: Box<dyn ModelWorker>,
    fuse: Arc<AtomicI64>,
}

impl ModelWorker for CrashAfter {
    fn handle(&mut self, req: Request) -> Response {
        if self.fuse.fetch_sub(1, Ordering::SeqCst) <= 0 {
            return Response::Error("injected crash".into());
        }
        self.inner.handle(req)
    }
    fn name(&self) -> String {
        self.inner.name()
    }
}

#[test]
fn local_shard_excluded_without_supervisor_recovers_bitwise() {
    let (ref_stars, ref_gas, ref_sn, ref_time) = baseline();

    for k in 2..=3usize {
        let c = cluster();
        let victim = (1 + 5 * k) % k;
        let fuses: Vec<Arc<AtomicI64>> =
            (0..k).map(|_| Arc::new(AtomicI64::new(i64::MAX))).collect();
        let shards: Vec<Box<dyn Channel>> = (0..k)
            .map(|i| {
                Box::new(LocalChannel::new(Box::new(CrashAfter {
                    inner: Box::new(CouplingWorker::fi()),
                    fuse: fuses[i].clone(),
                }))) as Box<dyn Channel>
            })
            .collect();
        // no supervisor: the dead shard must be excluded
        let pool = ShardedChannel::with_counts(shards, vec![0; k]);

        let mut bridge = Bridge::new(
            Box::new(LocalChannel::new(Box::new(GravityWorker::new(
                c.stars.clone(),
                Backend::Scalar,
            )))),
            Box::new(LocalChannel::new(Box::new(HydroWorker::new(c.gas.clone())))),
            Box::new(pool),
            Some(Box::new(LocalChannel::new(Box::new(StellarWorker::new(
                c.star_masses_msun.clone(),
                0.02,
            ))))),
            config(&c),
        );

        // checkpoint only every 2nd iteration, and arm the fuse so the
        // failure lands one iteration *past* the last checkpoint: the
        // recovery must rewind two iterations and catch back up, not
        // just replay one
        let policy = RecoveryPolicy { max_retries: 2, checkpoint_interval: 2 };
        let mut checkpoint: Option<Checkpoint> = None;
        let mut recoveries = 0u32;
        for i in 0..ITERATIONS {
            if i == CLEAN_ITERATIONS + 1 {
                fuses[victim].store(FUSE, Ordering::SeqCst);
            }
            let (_rep, rec) = bridge
                .iteration_recovering(&mut checkpoint, &policy)
                .unwrap_or_else(|e| panic!("k={k}: {e}"));
            recoveries += rec;
            assert_eq!(bridge.iterations(), (i + 1) as u64, "k={k}: iteration count truthful");
        }
        assert!(recoveries >= 1, "k={k}: the crash must actually trigger a recovery");

        let (stars, gas) = bridge.snapshots();
        assert_eq!(bridge.model_time().to_bits(), ref_time.to_bits(), "k={k}");
        assert_eq!(bridge.total_supernovae(), ref_sn, "k={k}");
        assert!(bitwise_eq(&stars, &ref_stars), "k={k}: star state diverged after exclusion");
        assert!(bitwise_eq(&gas, &ref_gas), "k={k}: gas state diverged after exclusion");
    }
}

#[test]
fn checkpoint_file_survives_a_new_bridge_instance() {
    // restore-into-a-fresh-process smoke: run 2 iterations, checkpoint
    // to a file, rebuild the whole bridge from initial conditions,
    // restore, run 2 more — bitwise equal to 4 straight iterations
    let (ref_stars, ref_gas, ref_sn, ref_time) = baseline();
    let c = cluster();
    let build = |c: &EmbeddedCluster| {
        Bridge::new(
            Box::new(LocalChannel::new(Box::new(GravityWorker::new(
                c.stars.clone(),
                Backend::Scalar,
            )))),
            Box::new(LocalChannel::new(Box::new(HydroWorker::new(c.gas.clone())))),
            Box::new(LocalChannel::new(Box::new(CouplingWorker::fi()))),
            Some(Box::new(LocalChannel::new(Box::new(StellarWorker::new(
                c.star_masses_msun.clone(),
                0.02,
            ))))),
            config(c),
        )
    };
    let path = std::env::temp_dir().join(format!("jc-failover-ck-{}.bin", std::process::id()));
    let mut first = build(&c);
    first.iteration();
    first.iteration();
    first.snapshot_to(&path).expect("write checkpoint");
    drop(first);

    let mut second = build(&c); // fresh initial conditions
    second.restore_from(&path).expect("read checkpoint");
    let _ = std::fs::remove_file(&path);
    assert_eq!(second.iterations(), 2);
    second.iteration();
    second.iteration();
    let (stars, gas) = second.snapshots();
    assert_eq!(second.model_time().to_bits(), ref_time.to_bits());
    assert_eq!(second.total_supernovae(), ref_sn);
    assert!(bitwise_eq(&stars, &ref_stars));
    assert!(bitwise_eq(&gas, &ref_gas));
}
