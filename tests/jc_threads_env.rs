//! Regression test: `JC_THREADS` is read per resolution, not pinned by
//! the first kernel call.
//!
//! Both `jc_compute::par::threads_for` and the rayon shim used to cache
//! the `JC_THREADS` environment read in a `OnceLock`, so the first
//! resolution pinned the value process-wide — an in-process sweep over
//! thread counts (perfsuite's `_t2`/`_tN` rows) silently measured one
//! setting under three labels. Both must now honor a mid-process env
//! change. One `#[test]` on purpose: `set_var` is process-global, so
//! the sequence must not interleave with another test's reads.

use rayon::prelude::*;
use std::thread::ThreadId;

/// Number of distinct threads a rayon-shim pipeline over `len` elements
/// ran on (each worker tags its elements with its own id).
fn rayon_distinct_threads(len: usize) -> usize {
    let ids: Vec<ThreadId> =
        (0..len).into_par_iter().map(|_| std::thread::current().id()).collect();
    let mut distinct: Vec<ThreadId> = Vec::new();
    for id in ids {
        if !distinct.contains(&id) {
            distinct.push(id);
        }
    }
    distinct.len()
}

#[test]
fn jc_threads_is_read_per_resolution_not_pinned_at_first_use() {
    // Process-global env: this is the only test in this binary that
    // touches JC_THREADS, and it runs its steps sequentially.
    std::env::set_var("JC_THREADS", "3");

    // --- jc_compute::par: the cap follows the environment ---
    assert_eq!(jc_compute::threads_for(10_000, 0, 1), 3, "initial JC_THREADS ignored");
    std::env::set_var("JC_THREADS", "5");
    assert_eq!(
        jc_compute::threads_for(10_000, 0, 1),
        5,
        "JC_THREADS change after first use was pinned by a cached read"
    );
    // An explicit cap still wins over the environment.
    assert_eq!(jc_compute::threads_for(10_000, 2, 1), 2);
    // The grain policy still floors small problems without consulting
    // the environment.
    assert_eq!(jc_compute::threads_for(10, 0, 64), 1);

    // --- rayon shim: worker fan-out follows the environment ---
    std::env::set_var("JC_THREADS", "1");
    assert_eq!(rayon_distinct_threads(4096), 1, "JC_THREADS=1 must stay on the caller");
    std::env::set_var("JC_THREADS", "4");
    assert!(
        rayon_distinct_threads(4096) > 1,
        "raising JC_THREADS mid-process must widen the rayon shim's fan-out"
    );

    std::env::remove_var("JC_THREADS");
}
