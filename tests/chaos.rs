//! Chaos soak: seeded fault schedules over live loopback TCP shards,
//! every one asserted bitwise-identical to the fault-free run.
//!
//! Each seed derives a [`FaultPlan`] — connection refusals, read/write
//! timeouts, short reads, torn frames, corrupted headers, worker
//! crashes, checkpoint truncations — and the whole schedule is a pure
//! function of that seed. A consecutive seed range therefore covers
//! every fault site (`KINDS[seed % 8]` is the primary), and any
//! divergence is reported as `JC_CHAOS_SEED=<n>`, which alone
//! reproduces it.
//!
//! Two recovery tiers are exercised and distinguished:
//!
//! * transient faults are absorbed *in place* by the socket channel's
//!   sequence-numbered resend (worker-side dedup makes mutating
//!   requests idempotent) — zero checkpoint restores;
//! * worker crashes surface as fatal and take the heavy path —
//!   supervisor respawn, checkpoint restore, replay.

use jungle::amuse::channel::{Channel, LocalChannel};
use jungle::amuse::chaos::{FaultKind, FaultPlan, IoFault, RetryPolicy, StreamFaults, KINDS};
use jungle::amuse::reactor::{Reactor, ReactorChannel};
use jungle::amuse::shard::ShardedChannel;
use jungle::amuse::socket::{spawn_flaky_tcp_worker, spawn_tcp_worker};
use jungle::amuse::worker::{
    CouplingWorker, GravityWorker, HydroWorker, ParticleData, StellarWorker,
};
use jungle::amuse::{
    Bridge, BridgeConfig, ChaosWriter, Checkpoint, EmbeddedCluster, RecoveryPolicy, SocketChannel,
};
use jungle::nbody::Backend;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::AtomicI64;
use std::sync::Arc;

/// Seeds per soak run: 4 sweeps over the 8 fault sites.
const SEEDS: u64 = 32;
const ITERATIONS: u32 = 3;

fn cluster() -> EmbeddedCluster {
    EmbeddedCluster::build(24, 96, 0.5, 11)
}

fn config(c: &EmbeddedCluster) -> BridgeConfig {
    let mut cfg = c.bridge_config();
    cfg.substeps = 2;
    cfg.stellar_interval = 2;
    cfg
}

fn bitwise_eq(a: &ParticleData, b: &ParticleData) -> bool {
    let f = |x: &[f64], y: &[f64]| {
        x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
    };
    let v = |x: &[[f64; 3]], y: &[[f64; 3]]| {
        x.len() == y.len()
            && x.iter().zip(y).all(|(p, q)| (0..3).all(|k| p[k].to_bits() == q[k].to_bits()))
    };
    f(&a.mass, &b.mass) && v(&a.pos, &b.pos) && v(&a.vel, &b.vel)
}

struct Reference {
    stars: ParticleData,
    gas: ParticleData,
    supernovae: u32,
    time: f64,
}

/// The uninterrupted reference: everything in process, no failures.
fn baseline() -> Reference {
    let c = cluster();
    let mut bridge = Bridge::new(
        Box::new(LocalChannel::new(Box::new(GravityWorker::new(c.stars.clone(), Backend::Scalar)))),
        Box::new(LocalChannel::new(Box::new(HydroWorker::new(c.gas.clone())))),
        Box::new(LocalChannel::new(Box::new(CouplingWorker::fi()))),
        Some(Box::new(LocalChannel::new(Box::new(StellarWorker::new(
            c.star_masses_msun.clone(),
            0.02,
        ))))),
        config(&c),
    );
    for _ in 0..ITERATIONS {
        bridge.iteration();
    }
    let (stars, gas) = bridge.snapshots();
    Reference { stars, gas, supernovae: bridge.total_supernovae(), time: bridge.model_time() }
}

/// Which transport a chaos soak drives its channels over.
#[derive(Clone, Copy, PartialEq)]
enum Transport {
    /// Blocking [`SocketChannel`]s.
    Blocking,
    /// Event-driven [`ReactorChannel`]s on one shared [`Reactor`].
    Reactor,
}

/// Run one seeded fault schedule over a live loopback TCP cluster with
/// `k` coupling shards and compare the final state bitwise against the
/// fault-free reference. Returns `(recoveries, in_place_retries)` on
/// convergence, a `JC_CHAOS_SEED=<seed>`-prefixed description on any
/// divergence or unexpected failure. The same seed must converge over
/// both [`Transport`]s: chaos draws happen at identical frame-op
/// boundaries, so one schedule maps onto either implementation.
fn run_chaos_seed(
    seed: u64,
    k: usize,
    reference: &Reference,
    transport: Transport,
) -> Result<(u32, u64), String> {
    let plan = FaultPlan::seeded(seed);
    let fail = |msg: String| format!("JC_CHAOS_SEED={seed} (k={k}): {msg}");
    let c = cluster();
    let mut handles = Vec::new();
    let respawned: Rc<RefCell<Vec<std::thread::JoinHandle<std::io::Result<()>>>>> =
        Rc::new(RefCell::new(Vec::new()));
    let reactor = Reactor::new_shared().expect("reactor");
    let connect = |addr: std::net::SocketAddr, name: String| -> std::io::Result<Box<dyn Channel>> {
        match transport {
            Transport::Blocking => Ok(Box::new(SocketChannel::connect(addr, name)?)),
            Transport::Reactor => Ok(Box::new(ReactorChannel::connect(&reactor, addr, name)?)),
        }
    };

    // the healthy single workers — the plan only targets the pool
    let (stars_ics, gas_ics, imf) = (c.stars.clone(), c.gas.clone(), c.star_masses_msun.clone());
    let (g_addr, g_h) =
        spawn_tcp_worker("grav", move || GravityWorker::new(stars_ics, Backend::Scalar));
    let (h_addr, h_h) = spawn_tcp_worker("hydro", move || HydroWorker::new(gas_ics));
    let (s_addr, s_h) = spawn_tcp_worker("sse", move || StellarWorker::new(imf, 0.02));
    handles.extend([g_h, h_h, s_h]);

    // K coupling shards, each with its slice of the plan: a crash fuse
    // (if the plan schedules one) plus the transport faults for its
    // stream, absorbed by a fast deterministic retry policy.
    let retry =
        RetryPolicy { backoff_base_ms: 1, backoff_max_ms: 8, ..RetryPolicy::standard(seed) };
    let shards: Vec<Box<dyn Channel>> = (0..k)
        .map(|i| {
            let fuse = Arc::new(AtomicI64::new(plan.crash_fuse(k, i).unwrap_or(i64::MAX)));
            let (addr, h) = spawn_flaky_tcp_worker(format!("fi-{i}"), CouplingWorker::fi, fuse);
            handles.push(h);
            let faults = plan.stream_faults(k, i);
            match transport {
                Transport::Blocking => Box::new(
                    SocketChannel::connect(addr, format!("fi-{i}"))
                        .expect("connect shard")
                        .with_retry(retry)
                        .with_chaos(faults),
                ) as Box<dyn Channel>,
                Transport::Reactor => Box::new(
                    ReactorChannel::connect(&reactor, addr, format!("fi-{i}"))
                        .expect("connect shard")
                        .with_retry(retry)
                        .with_chaos(faults),
                ) as Box<dyn Channel>,
            }
        })
        .collect();

    // supervisor: respawn a crashed shard as a fresh healthy server on
    // the same transport the pool started with
    let respawned_c = respawned.clone();
    let respawn_reactor = reactor.clone();
    let supervisor = move |i: usize| -> Option<Box<dyn Channel>> {
        let (addr, h) = spawn_tcp_worker(format!("fi-{i}-respawn"), CouplingWorker::fi);
        respawned_c.borrow_mut().push(h);
        let name = format!("fi-{i}-respawn");
        match transport {
            Transport::Blocking => {
                Some(Box::new(SocketChannel::connect(addr, name).ok()?) as Box<dyn Channel>)
            }
            Transport::Reactor => {
                Some(Box::new(ReactorChannel::connect(&respawn_reactor, addr, name).ok()?)
                    as Box<dyn Channel>)
            }
        }
    };
    let pool =
        ShardedChannel::with_counts(shards, vec![0; k]).with_supervisor(Box::new(supervisor));

    let mut bridge = Bridge::new(
        connect(g_addr, "grav".into()).expect("connect gravity"),
        connect(h_addr, "hydro".into()).expect("connect hydro"),
        Box::new(pool),
        Some(connect(s_addr, "sse".into()).expect("connect stellar")),
        config(&c),
    );

    let policy = RecoveryPolicy { max_retries: 4, checkpoint_interval: 1 };
    let mut checkpoint: Option<Checkpoint> = None;
    let mut recoveries = 0u32;
    for _ in 0..ITERATIONS {
        let (_rep, rec) = bridge
            .iteration_recovering(&mut checkpoint, &policy)
            .map_err(|e| fail(format!("iteration failed: {e}")))?;
        recoveries += rec;
    }

    // Checkpoint-truncation leg: the plan's lying disk reports a
    // successful save but only `keep` bytes land. The per-section CRC
    // (or the framing) must reject the load with a typed error, and the
    // intact save must still round-trip — the soak then proceeds on it.
    if let Some(keep) = plan.checkpoint_truncation(k) {
        let ck = checkpoint.as_ref().expect("checkpoint_interval=1 keeps one");
        let mut torn = Vec::new();
        ck.write_to(&mut ChaosWriter::new(&mut torn, keep))
            .map_err(|e| fail(format!("the lying disk surfaced an error: {e}")))?;
        if Checkpoint::read_from(&mut std::io::Cursor::new(&torn)).is_ok() {
            return Err(fail(format!("a {keep}-byte truncated checkpoint loaded as valid")));
        }
        let mut good = Vec::new();
        ck.write_to(&mut good).map_err(|e| fail(format!("intact save failed: {e}")))?;
        Checkpoint::read_from(&mut std::io::Cursor::new(&good))
            .map_err(|e| fail(format!("intact checkpoint failed to load: {e}")))?;
    }

    let retries = bridge.channel_stats().2.retries;
    let (stars, gas) = bridge.snapshots();
    if bridge.model_time().to_bits() != reference.time.to_bits() {
        return Err(fail(format!(
            "model time diverged: {} vs {}",
            bridge.model_time(),
            reference.time
        )));
    }
    if bridge.total_supernovae() != reference.supernovae {
        return Err(fail("supernova count diverged".into()));
    }
    if !bitwise_eq(&stars, &reference.stars) {
        return Err(fail("star state diverged".into()));
    }
    if !bitwise_eq(&gas, &reference.gas) {
        return Err(fail("gas state diverged".into()));
    }

    drop(bridge); // Stop frames shut the healthy servers down
    for h in handles {
        h.join().expect("server thread").map_err(|e| fail(format!("server errored: {e}")))?;
    }
    for h in Rc::try_unwrap(respawned).expect("bridge dropped").into_inner() {
        h.join().expect("respawned thread").map_err(|e| fail(format!("respawn errored: {e}")))?;
    }
    Ok((recoveries, retries))
}

fn sweep_all_seeds(transport: Transport) {
    let reference = baseline();
    let mut failures = Vec::new();
    let mut covered = [false; KINDS.len()];
    let mut in_place = 0u64;
    let mut heavy = 0u32;
    for seed in 0..SEEDS {
        let k = 1 + (seed as usize % 3);
        let plan = FaultPlan::seeded(seed);
        let primary = plan.schedule(k)[0].kind;
        covered[KINDS.iter().position(|&kk| kk == primary).expect("primary from KINDS")] = true;
        match run_chaos_seed(seed, k, &reference, transport) {
            Ok((recoveries, retries)) => {
                in_place += retries;
                heavy += recoveries;
                // a crash schedule must take the heavy path, not luck out
                if primary == FaultKind::WorkerCrash && recoveries == 0 {
                    failures.push(format!(
                        "JC_CHAOS_SEED={seed} (k={k}): crash schedule completed without recovery"
                    ));
                }
            }
            Err(e) => failures.push(e),
        }
    }
    assert!(failures.is_empty(), "diverging seeds:\n{}", failures.join("\n"));
    assert!(
        covered.iter().all(|&c| c),
        "a {SEEDS}-seed sweep must cover every fault site: {covered:?}"
    );
    // both recovery tiers must actually fire across the sweep
    assert!(in_place > 0, "no in-place retries across {SEEDS} seeds");
    assert!(heavy > 0, "no heal/restore recoveries across {SEEDS} seeds");
}

#[test]
fn every_seeded_fault_schedule_converges_to_the_fault_free_run() {
    sweep_all_seeds(Transport::Blocking);
}

/// The same 32 seeds through the event-driven transport: chaos draws
/// land at identical frame-op boundaries, so every schedule must
/// converge bitwise exactly as it does over blocking sockets —
/// transient faults absorbed by in-place resends, crashes taking the
/// respawn/restore path.
#[test]
fn every_seeded_fault_schedule_converges_over_the_reactor() {
    sweep_all_seeds(Transport::Reactor);
}

// Hand-built schedule of purely transient transport faults — a lost
// response, a torn frame, a corrupted header, a vanished peer — across
// both shards of a K=2 pool. Every one must be absorbed by the in-place
// sequence-numbered resend: zero checkpoint restores, a positive retry
// count, and bitwise-identical output.
fn transient_schedule(transport: Transport) {
    let reference = baseline();
    let reactor = Reactor::new_shared().expect("reactor");
    let c = cluster();
    let mut handles = Vec::new();

    let (stars_ics, gas_ics, imf) = (c.stars.clone(), c.gas.clone(), c.star_masses_msun.clone());
    let (g_addr, g_h) =
        spawn_tcp_worker("grav", move || GravityWorker::new(stars_ics, Backend::Scalar));
    let (h_addr, h_h) = spawn_tcp_worker("hydro", move || HydroWorker::new(gas_ics));
    let (s_addr, s_h) = spawn_tcp_worker("sse", move || StellarWorker::new(imf, 0.02));
    handles.extend([g_h, h_h, s_h]);

    let retry = RetryPolicy { backoff_base_ms: 1, backoff_max_ms: 8, ..RetryPolicy::standard(42) };
    let schedules = [
        StreamFaults::default()
            .with_read(2, IoFault::ReadTimeout)
            .with_write(5, IoFault::PartialWrite),
        StreamFaults::default()
            .with_read(3, IoFault::CorruptHeader)
            .with_read(6, IoFault::ShortRead)
            .with_write(4, IoFault::WriteTimeout),
    ];
    let shards: Vec<Box<dyn Channel>> = schedules
        .into_iter()
        .enumerate()
        .map(|(i, faults)| {
            let (addr, h) = spawn_tcp_worker(format!("fi-{i}"), CouplingWorker::fi);
            handles.push(h);
            match transport {
                Transport::Blocking => Box::new(
                    SocketChannel::connect(addr, format!("fi-{i}"))
                        .expect("connect shard")
                        .with_retry(retry)
                        .with_chaos(faults),
                ) as Box<dyn Channel>,
                Transport::Reactor => Box::new(
                    ReactorChannel::connect(&reactor, addr, format!("fi-{i}"))
                        .expect("connect shard")
                        .with_retry(retry)
                        .with_chaos(faults),
                ) as Box<dyn Channel>,
            }
        })
        .collect();
    let pool = ShardedChannel::with_counts(shards, vec![0; 2]);

    let mut bridge = Bridge::new(
        Box::new(SocketChannel::connect(g_addr, "grav").expect("connect gravity")),
        Box::new(SocketChannel::connect(h_addr, "hydro").expect("connect hydro")),
        Box::new(pool),
        Some(Box::new(SocketChannel::connect(s_addr, "sse").expect("connect stellar"))),
        config(&c),
    );

    let policy = RecoveryPolicy { max_retries: 2, checkpoint_interval: 1 };
    let mut checkpoint: Option<Checkpoint> = None;
    let mut recoveries = 0u32;
    for _ in 0..ITERATIONS {
        let (_rep, rec) = bridge.iteration_recovering(&mut checkpoint, &policy).expect("iteration");
        recoveries += rec;
    }

    assert_eq!(recoveries, 0, "transient faults must never reach the restore path");
    let retries = bridge.channel_stats().2.retries;
    assert!(retries >= 5, "all five injected faults retry in place (got {retries})");

    let (stars, gas) = bridge.snapshots();
    assert_eq!(bridge.model_time().to_bits(), reference.time.to_bits());
    assert_eq!(bridge.total_supernovae(), reference.supernovae);
    assert!(bitwise_eq(&stars, &reference.stars), "star state diverged");
    assert!(bitwise_eq(&gas, &reference.gas), "gas state diverged");

    drop(bridge);
    for h in handles {
        h.join().expect("server thread").expect("server exits cleanly");
    }
}

#[test]
fn a_transient_schedule_completes_without_a_single_restore() {
    transient_schedule(Transport::Blocking);
}

/// The same hand-built transient schedule absorbed entirely in place by
/// the reactor transport's reconnect-and-resend discipline.
#[test]
fn a_transient_schedule_over_the_reactor_retries_in_place() {
    transient_schedule(Transport::Reactor);
}
