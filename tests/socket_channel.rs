//! Integration: a full Bridge iteration over real TCP sockets.
//!
//! Spawns the four model workers behind loopback `WorkerServer`s on
//! ephemeral ports, runs the embedded-cluster bridge over
//! [`SocketChannel`]s, and checks the result is *bitwise* equal to the
//! same bridge over in-process [`LocalChannel`]s — the transport must be
//! physically real but numerically invisible. Also pins the accounting:
//! the socket channel's byte counters, measured from actual TCP traffic,
//! must equal the modeled `wire_size()` sums.

use jungle::amuse::channel::{Channel, LocalChannel};
use jungle::amuse::socket::spawn_tcp_worker;
use jungle::amuse::worker::{
    CouplingWorker, GravityWorker, HydroWorker, ParticleData, Request, Response, StellarWorker,
};
use jungle::amuse::{Bridge, EmbeddedCluster, SocketChannel};
use jungle::nbody::Backend;

fn bitwise_eq(a: &ParticleData, b: &ParticleData) -> bool {
    let f = |x: &[f64], y: &[f64]| {
        x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
    };
    let v = |x: &[[f64; 3]], y: &[[f64; 3]]| {
        x.len() == y.len()
            && x.iter().zip(y).all(|(p, q)| (0..3).all(|k| p[k].to_bits() == q[k].to_bits()))
    };
    f(&a.mass, &b.mass) && v(&a.pos, &b.pos) && v(&a.vel, &b.vel)
}

/// Identical worker sets from the same deterministic cluster build.
fn cluster() -> EmbeddedCluster {
    EmbeddedCluster::build(24, 96, 0.5, 17)
}

fn run_local(iterations: usize) -> (ParticleData, ParticleData) {
    let c = cluster();
    let mut cfg = c.bridge_config();
    cfg.substeps = 2;
    cfg.stellar_interval = 1;
    let mut bridge = Bridge::new(
        Box::new(LocalChannel::new(Box::new(GravityWorker::new(c.stars.clone(), Backend::Scalar)))),
        Box::new(LocalChannel::new(Box::new(HydroWorker::new(c.gas.clone())))),
        Box::new(LocalChannel::new(Box::new(CouplingWorker::fi()))),
        Some(Box::new(LocalChannel::new(Box::new(StellarWorker::new(
            c.star_masses_msun.clone(),
            0.02,
        ))))),
        cfg,
    );
    for _ in 0..iterations {
        bridge.iteration();
    }
    bridge.snapshots()
}

#[test]
fn bridge_over_tcp_is_bitwise_identical_to_local() {
    let c = cluster();
    let (stars, gas, imf) = (c.stars.clone(), c.gas.clone(), c.star_masses_msun.clone());
    let (g_addr, g_h) =
        spawn_tcp_worker("grav", move || GravityWorker::new(stars, Backend::Scalar));
    let (h_addr, h_h) = spawn_tcp_worker("hydro", move || HydroWorker::new(gas));
    let (c_addr, c_h) = spawn_tcp_worker("fi", CouplingWorker::fi);
    let (s_addr, s_h) = spawn_tcp_worker("sse", move || StellarWorker::new(imf, 0.02));

    let mut cfg = c.bridge_config();
    cfg.substeps = 2;
    cfg.stellar_interval = 1;
    let mut bridge = Bridge::new(
        Box::new(SocketChannel::connect(g_addr, "grav").unwrap()),
        Box::new(SocketChannel::connect(h_addr, "hydro").unwrap()),
        Box::new(SocketChannel::connect(c_addr, "fi").unwrap()),
        Some(Box::new(SocketChannel::connect(s_addr, "sse").unwrap())),
        cfg,
    );
    for _ in 0..2 {
        let rep = bridge.iteration();
        assert!(rep.calls > 10, "socket bridge made {} calls", rep.calls);
    }
    let (stars_tcp, gas_tcp) = bridge.snapshots();

    let (g, h, cstat, s) = bridge.channel_stats();
    for (name, st) in [("gravity", g), ("hydro", h), ("coupling", cstat), ("stellar", s.unwrap())] {
        assert!(st.calls > 0, "{name} channel unused");
        assert!(st.bytes_out >= 32 * st.calls, "{name}: {st:?}");
        assert!(st.bytes_in >= 32 * st.calls, "{name}: {st:?}");
    }

    drop(bridge); // drops the channels -> Stop frames -> servers exit
    for h in [g_h, h_h, c_h, s_h] {
        h.join().unwrap().unwrap();
    }

    let (stars_local, gas_local) = run_local(2);
    assert!(bitwise_eq(&stars_tcp, &stars_local), "star state diverged over TCP");
    assert!(bitwise_eq(&gas_tcp, &gas_local), "gas state diverged over TCP");
}

/// Byte accounting: what the socket channel counts from real traffic
/// must equal the modeled `wire_size()` of every request and response.
#[test]
fn socket_stats_match_modeled_wire_sizes() {
    let c = cluster();
    let n = c.stars.len();
    let stars = c.stars.clone();
    let (addr, handle) =
        spawn_tcp_worker("grav", move || GravityWorker::new(stars, Backend::Scalar));
    let mut ch = SocketChannel::connect(addr, "grav").unwrap();

    let requests = vec![
        Request::Ping,
        Request::GetParticles,
        Request::Kick(vec![[1e-5; 3]; n]),
        Request::SetMasses(c.stars.mass.clone()),
        Request::EvolveTo(1.0 / 128.0),
        Request::EvolveStars(1.0), // unsupported by gravity: still a round trip
    ];
    let mut expect_out = 0u64;
    let mut expect_in = 0u64;
    let mut expect_calls = 0u64;
    for req in requests {
        expect_out += req.wire_size();
        expect_calls += 1;
        let resp = ch.call(req);
        assert!(!matches!(resp, Response::Error(_)), "{resp:?}");
        expect_in += resp.wire_size();
    }
    let st = ch.stats();
    assert_eq!(st.calls, expect_calls);
    assert_eq!(st.bytes_out, expect_out, "request bytes != modeled wire size");
    assert_eq!(st.bytes_in, expect_in, "response bytes != modeled wire size");

    // the borrowing fast paths account identically
    let mut snap = ParticleData::default();
    assert!(ch.snapshot_into(&mut snap));
    assert_eq!(snap.mass.len(), n);
    let dv = vec![[0.0; 3]; n];
    let r = ch.kick_slice(&dv);
    assert!(matches!(r, Response::Ok { .. }), "{r:?}");
    let st2 = ch.stats();
    assert_eq!(st2.calls, expect_calls + 2);
    assert_eq!(
        st2.bytes_out - st.bytes_out,
        Request::GetParticles.wire_size() + Request::Kick(dv).wire_size()
    );
    assert_eq!(st2.bytes_in - st.bytes_in, snap.wire_size() + 32 + 40);

    drop(ch);
    handle.join().unwrap().unwrap();
}

/// Asynchronous submit/collect works across the socket and actually
/// overlaps two workers.
#[test]
fn socket_channels_overlap_evolves() {
    let c = cluster();
    let (stars, gas) = (c.stars.clone(), c.gas.clone());
    let (g_addr, g_h) =
        spawn_tcp_worker("grav", move || GravityWorker::new(stars, Backend::Scalar));
    let (h_addr, h_h) = spawn_tcp_worker("hydro", move || HydroWorker::new(gas));
    let mut g = SocketChannel::connect(g_addr, "grav").unwrap();
    let mut h = SocketChannel::connect(h_addr, "hydro").unwrap();
    g.submit(Request::EvolveTo(1.0 / 64.0));
    h.submit(Request::EvolveTo(1.0 / 64.0));
    let (rg, rh) = (g.collect(), h.collect());
    assert!(matches!(rg, Response::Ok { .. }), "{rg:?}");
    assert!(matches!(rh, Response::Ok { .. }), "{rh:?}");
    drop(g);
    drop(h);
    g_h.join().unwrap().unwrap();
    h_h.join().unwrap().unwrap();
}
