//! Integration tests over the middleware half of the stack: deploy a grid
//! description end-to-end and exercise SmartSockets + IPL + GAT together.

use jungle::deploy::{Deployment, GridDescription};
use jungle::netsim::SimConfig;
use jungle::smartsockets::EdgeKind;

const GRID: &str = r#"{
    "resources": [
        {"name": "laptop", "location": "Seattle, WA, USA", "nodes": 1,
         "client": true, "middlewares": ["local"], "firewall": "firewalled"},
        {"name": "VU", "location": "Amsterdam, NL", "nodes": 4,
         "middlewares": ["pbs", "ssh"], "firewall": "open"},
        {"name": "LGM", "location": "Leiden, NL", "nodes": 2,
         "middlewares": ["sge"], "firewall": "nat",
         "gpus": [{"model": "Tesla C2050", "gflops": 300.0}]}
    ],
    "links": [
        {"a": "laptop", "b": "VU", "latency_ms": 45.0, "gbps": 1.0,
         "label": "transatlantic"},
        {"a": "VU", "b": "LGM", "latency_ms": 1.0, "gbps": 10.0}
    ]
}"#;

#[test]
fn grid_json_to_running_world() {
    let grid = GridDescription::from_json(GRID).expect("valid grid json");
    let mut d = Deployment::build(grid, SimConfig::default()).expect("builds");
    assert!(d.converge_overlay(10_000_000), "hubs gossip to convergence");
    // the overlay must classify the firewalled/NAT edges
    let view = d.overlay.view(d.sim.topology());
    assert_eq!(view.edges.len(), 3, "three hub pairs");
    assert!(
        view.count(EdgeKind::Bidirectional) < 3,
        "restricted sites cannot all be bidirectional: {}",
        view.render()
    );
}

#[test]
fn firewalled_client_can_still_reach_nat_resource() {
    use jungle::smartsockets::{ConnectionPlan, VirtualAddress};
    let grid = GridDescription::from_json(GRID).unwrap();
    let mut d = Deployment::build(grid, SimConfig::default()).unwrap();
    d.converge_overlay(10_000_000);
    let laptop = d.placements["laptop"].front_end;
    let lgm_node = d.placements["LGM"].nodes[0];
    let plan = ConnectionPlan::plan(
        d.sim.topology(),
        Some(&d.overlay),
        VirtualAddress::new(laptop, 1),
        VirtualAddress::new(lgm_node, 1),
    );
    assert!(plan.is_usable(), "SmartSockets must find a path (reverse or relay): {plan:?}");
}

#[test]
fn grid_description_round_trips_through_json() {
    let grid = GridDescription::from_json(GRID).unwrap();
    let json = grid.to_json();
    let again = GridDescription::from_json(&json).unwrap();
    assert_eq!(grid, again);
}
