//! Equivalence layer: the event-driven reactor transport is pinned to
//! the blocking one.
//!
//! [`ReactorChannel`] speaks the same wire protocol as
//! [`SocketChannel`] but through a non-blocking readiness loop with
//! pipelined fan-out. Nothing about that may be *observable* except
//! latency: every test here runs identical work over `LocalChannel`,
//! `SocketChannel`, and `ReactorChannel` (for pool sizes K=1, 2, 3
//! where sharding applies) and demands bitwise-equal model state and
//! identical byte accounting. These tests are the contract that lets
//! the bridge switch transports freely.

use jungle::amuse::channel::{Channel, LocalChannel};
use jungle::amuse::reactor::{Reactor, ReactorChannel};
use jungle::amuse::shard::{partition, ShardedChannel};
use jungle::amuse::socket::spawn_tcp_worker;
use jungle::amuse::worker::{
    CouplingWorker, GravityWorker, HydroWorker, ParticleData, Request, Response, StellarWorker,
};
use jungle::amuse::{Bridge, EmbeddedCluster, SocketChannel};
use jungle::nbody::plummer::plummer_sphere;
use jungle::nbody::Backend;

fn bitwise_eq(a: &ParticleData, b: &ParticleData) -> bool {
    let f = |x: &[f64], y: &[f64]| {
        x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
    };
    let v = |x: &[[f64; 3]], y: &[[f64; 3]]| {
        x.len() == y.len()
            && x.iter().zip(y).all(|(p, q)| (0..3).all(|k| p[k].to_bits() == q[k].to_bits()))
    };
    f(&a.mass, &b.mass) && v(&a.pos, &b.pos) && v(&a.vel, &b.vel)
}

fn cluster() -> EmbeddedCluster {
    EmbeddedCluster::build(24, 96, 0.5, 17)
}

fn run_local(iterations: usize) -> (ParticleData, ParticleData) {
    let c = cluster();
    let mut cfg = c.bridge_config();
    cfg.substeps = 2;
    cfg.stellar_interval = 1;
    let mut bridge = Bridge::new(
        Box::new(LocalChannel::new(Box::new(GravityWorker::new(c.stars.clone(), Backend::Scalar)))),
        Box::new(LocalChannel::new(Box::new(HydroWorker::new(c.gas.clone())))),
        Box::new(LocalChannel::new(Box::new(CouplingWorker::fi()))),
        Some(Box::new(LocalChannel::new(Box::new(StellarWorker::new(
            c.star_masses_msun.clone(),
            0.02,
        ))))),
        cfg,
    );
    for _ in 0..iterations {
        bridge.iteration();
    }
    bridge.snapshots()
}

/// A full Bridge run with all four model workers behind one shared
/// reactor must be bitwise-identical to the all-local run (and hence,
/// by `socket_channel.rs`, to the blocking-socket run).
#[test]
fn bridge_over_reactor_is_bitwise_identical_to_local() {
    let c = cluster();
    let (stars, gas, imf) = (c.stars.clone(), c.gas.clone(), c.star_masses_msun.clone());
    let (g_addr, g_h) =
        spawn_tcp_worker("grav", move || GravityWorker::new(stars, Backend::Scalar));
    let (h_addr, h_h) = spawn_tcp_worker("hydro", move || HydroWorker::new(gas));
    let (c_addr, c_h) = spawn_tcp_worker("fi", CouplingWorker::fi);
    let (s_addr, s_h) = spawn_tcp_worker("sse", move || StellarWorker::new(imf, 0.02));

    let reactor = Reactor::new_shared().unwrap();
    let mut cfg = c.bridge_config();
    cfg.substeps = 2;
    cfg.stellar_interval = 1;
    let mut bridge = Bridge::new(
        Box::new(ReactorChannel::connect(&reactor, g_addr, "grav").unwrap()),
        Box::new(ReactorChannel::connect(&reactor, h_addr, "hydro").unwrap()),
        Box::new(ReactorChannel::connect(&reactor, c_addr, "fi").unwrap()),
        Some(Box::new(ReactorChannel::connect(&reactor, s_addr, "sse").unwrap())),
        cfg,
    );
    for _ in 0..2 {
        let rep = bridge.iteration();
        assert!(rep.calls > 10, "reactor bridge made {} calls", rep.calls);
    }
    let (stars_rx, gas_rx) = bridge.snapshots();

    let (g, h, cstat, s) = bridge.channel_stats();
    for (name, st) in [("gravity", g), ("hydro", h), ("coupling", cstat), ("stellar", s.unwrap())] {
        assert!(st.calls > 0, "{name} channel unused");
        assert!(st.bytes_out >= 32 * st.calls, "{name}: {st:?}");
        assert!(st.bytes_in >= 32 * st.calls, "{name}: {st:?}");
    }

    drop(bridge); // drops the channels -> Stop frames -> servers exit
    for h in [g_h, h_h, c_h, s_h] {
        h.join().unwrap().unwrap();
    }

    let (stars_local, gas_local) = run_local(2);
    assert!(bitwise_eq(&stars_rx, &stars_local), "star state diverged over the reactor");
    assert!(bitwise_eq(&gas_rx, &gas_local), "gas state diverged over the reactor");
}

/// Pipelined pools over the reactor, K = 1, 2, 3: coupling
/// scatter-gather and gravity state ops must match the blocking-socket
/// pools and the unsharded local worker bit for bit.
#[test]
fn reactor_pools_match_blocking_pools_for_k_1_2_3() {
    let scene = plummer_sphere(151, 23);
    let mut reference = LocalChannel::new(Box::new(CouplingWorker::fi()));
    let expected = match reference.call(Request::ComputeKick {
        targets: scene.pos.clone(),
        source_pos: scene.pos.clone(),
        source_mass: scene.mass.clone(),
    }) {
        Response::Accelerations { acc, .. } => acc,
        other => panic!("{other:?}"),
    };

    for k in 1..=3usize {
        let reactor = Reactor::new_shared().unwrap();
        let mut handles = Vec::new();
        let shards: Vec<Box<dyn Channel>> = (0..k)
            .map(|i| {
                let (addr, h) = spawn_tcp_worker(format!("fi-{i}"), CouplingWorker::fi);
                handles.push(h);
                Box::new(ReactorChannel::connect(&reactor, addr, format!("fi-{i}")).unwrap())
                    as Box<dyn Channel>
            })
            .collect();
        let mut pool = ShardedChannel::with_counts(shards, vec![0; k]);
        assert!(pool.pipelined(), "reactor pool must report pipelined fan-out");

        let mut acc = Vec::new();
        let flops = pool
            .compute_kick_into(&scene.pos, &scene.pos, &scene.mass, &mut acc)
            .expect("reactor pool compute_kick_into");
        assert!(flops > 0.0);
        assert_eq!(acc.len(), expected.len(), "k={k}");
        for (a, b) in acc.iter().zip(&expected) {
            for j in 0..3 {
                assert_eq!(a[j].to_bits(), b[j].to_bits(), "k={k}");
            }
        }

        // the generic submit/collect fan-out too
        match pool.call(Request::ComputeKick {
            targets: scene.pos.clone(),
            source_pos: scene.pos.clone(),
            source_mass: scene.mass.clone(),
        }) {
            Response::Accelerations { acc, .. } => {
                for (a, b) in acc.iter().zip(&expected) {
                    for j in 0..3 {
                        assert_eq!(a[j].to_bits(), b[j].to_bits(), "k={k} call path");
                    }
                }
            }
            other => panic!("k={k}: {other:?}"),
        }

        drop(pool);
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }
}

/// Range-sharded gravity state ops over reactor pools: pipelined
/// fan-out and the `JC_LOCKSTEP`-style serial fallback must both match
/// the unsharded local answer bitwise.
#[test]
fn reactor_state_ops_match_local_pipelined_and_lockstep() {
    let ics = plummer_sphere(40, 31);
    let dv: Vec<[f64; 3]> = (0..40).map(|i| [1e-4 * i as f64, -2e-5, 3e-5 * i as f64]).collect();
    let masses: Vec<f64> = (0..40).map(|i| 0.02 + 1e-4 * i as f64).collect();

    let mut single = LocalChannel::new(Box::new(GravityWorker::new(ics.clone(), Backend::Scalar)));
    assert!(matches!(single.call(Request::Kick(dv.clone())), Response::Ok { .. }));
    assert!(matches!(single.call(Request::SetMasses(masses.clone())), Response::Ok { .. }));
    let mut expected = ParticleData::default();
    assert!(single.snapshot_into(&mut expected));

    for (k, lockstep) in [(2usize, false), (3, false), (3, true)] {
        let reactor = Reactor::new_shared().unwrap();
        let counts = partition(40, k);
        let mut handles = Vec::new();
        let mut off = 0usize;
        let shards: Vec<Box<dyn Channel>> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let sub = ics.slice(off, off + c);
                off += c;
                let (addr, h) = spawn_tcp_worker(format!("grav-{i}"), move || {
                    GravityWorker::new(sub, Backend::Scalar)
                });
                handles.push(h);
                Box::new(ReactorChannel::connect(&reactor, addr, format!("grav-{i}")).unwrap())
                    as Box<dyn Channel>
            })
            .collect();
        let mut pool = ShardedChannel::new(shards).with_lockstep(lockstep);
        assert_eq!(pool.pipelined(), !lockstep);
        assert_eq!(pool.total_particles(), 40);

        let r = pool.kick_slice(&dv);
        assert!(matches!(r, Response::Ok { .. }), "k={k}: {r:?}");
        let r = pool.call(Request::SetMasses(masses.clone()));
        assert!(matches!(r, Response::Ok { .. }), "k={k}: {r:?}");
        let mut got = ParticleData::default();
        assert!(pool.snapshot_into(&mut got));
        assert!(
            bitwise_eq(&got, &expected),
            "k={k} lockstep={lockstep}: reactor pool state diverged"
        );

        drop(pool);
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }
}

/// Byte accounting through the reactor must equal the modeled
/// `wire_size()` of every request and response — the same pin the
/// blocking channel carries in `socket_channel.rs`.
#[test]
fn reactor_stats_match_modeled_wire_sizes() {
    let c = cluster();
    let n = c.stars.len();
    let stars = c.stars.clone();
    let (addr, handle) =
        spawn_tcp_worker("grav", move || GravityWorker::new(stars, Backend::Scalar));
    let reactor = Reactor::new_shared().unwrap();
    let mut ch = ReactorChannel::connect(&reactor, addr, "grav").unwrap();

    let requests = vec![
        Request::Ping,
        Request::GetParticles,
        Request::Kick(vec![[1e-5; 3]; n]),
        Request::SetMasses(c.stars.mass.clone()),
        Request::EvolveTo(1.0 / 128.0),
        Request::EvolveStars(1.0), // unsupported by gravity: still a round trip
    ];
    let mut expect_out = 0u64;
    let mut expect_in = 0u64;
    let mut expect_calls = 0u64;
    for req in requests {
        expect_out += req.wire_size();
        expect_calls += 1;
        let resp = ch.call(req);
        assert!(!matches!(resp, Response::Error(_)), "{resp:?}");
        expect_in += resp.wire_size();
    }
    let st = ch.stats();
    assert_eq!(st.calls, expect_calls);
    assert_eq!(st.bytes_out, expect_out, "request bytes != modeled wire size");
    assert_eq!(st.bytes_in, expect_in, "response bytes != modeled wire size");

    // the borrowing fast paths account identically
    let mut snap = ParticleData::default();
    assert!(ch.snapshot_into(&mut snap));
    assert_eq!(snap.mass.len(), n);
    let dv = vec![[0.0; 3]; n];
    let r = ch.kick_slice(&dv);
    assert!(matches!(r, Response::Ok { .. }), "{r:?}");
    let st2 = ch.stats();
    assert_eq!(st2.calls, expect_calls + 2);
    assert_eq!(
        st2.bytes_out - st.bytes_out,
        Request::GetParticles.wire_size() + Request::Kick(dv).wire_size()
    );
    assert_eq!(st2.bytes_in - st.bytes_in, snap.wire_size() + 32 + 40);

    drop(ch);
    handle.join().unwrap().unwrap();
}

/// Two requests genuinely in flight on one connection: depth-2
/// pipelining must deliver the same answers as two blocking round
/// trips on a `SocketChannel` against an identical worker.
#[test]
fn depth_two_pipelining_matches_blocking_round_trips() {
    let ics = plummer_sphere(64, 5);
    let dv: Vec<[f64; 3]> = (0..64).map(|i| [1e-5 * i as f64, 2e-5, -1e-5]).collect();

    let blocking = {
        let sub = ics.clone();
        let (addr, h) = spawn_tcp_worker("grav", move || GravityWorker::new(sub, Backend::Scalar));
        let mut ch = SocketChannel::connect(addr, "grav").unwrap();
        let mut snap = ParticleData::default();
        assert!(ch.snapshot_into(&mut snap));
        let r = ch.kick_slice(&dv);
        assert!(matches!(r, Response::Ok { .. }), "{r:?}");
        drop(ch);
        h.join().unwrap().unwrap();
        snap
    };

    let pipelined = {
        let sub = ics.clone();
        let (addr, h) = spawn_tcp_worker("grav", move || GravityWorker::new(sub, Backend::Scalar));
        let reactor = Reactor::new_shared().unwrap();
        let mut ch = ReactorChannel::connect(&reactor, addr, "grav").unwrap();
        // both frames submitted before either reply is awaited
        ch.submit_snapshot();
        ch.submit_kick_slice(&dv);
        let mut snap = ParticleData::default();
        assert!(ch.collect_snapshot_into(&mut snap));
        let r = ch.collect_kick();
        assert!(matches!(r, Response::Ok { .. }), "{r:?}");
        drop(ch);
        h.join().unwrap().unwrap();
        snap
    };

    assert!(bitwise_eq(&blocking, &pipelined), "depth-2 pipelining changed the snapshot");
}
