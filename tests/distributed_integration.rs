//! Cross-crate integration tests: the full distributed-AMUSE stack.

use jungle::core::scenarios::{run_crash_demo, run_scenario, SUBSTEPS, TOY_GAS, TOY_STARS};
use jungle::core::Scenario;

/// Scenario runs are bit-deterministic: same seed, same virtual time.
#[test]
fn scenario_runs_are_deterministic() {
    let a = run_scenario(Scenario::RemoteGpu, 1).result;
    let b = run_scenario(Scenario::RemoteGpu, 1).result;
    assert_eq!(a.seconds_per_iteration.to_bits(), b.seconds_per_iteration.to_bits());
    assert_eq!(a.wan_ipl_bytes, b.wan_ipl_bytes);
    assert_eq!(a.calls_per_iteration, b.calls_per_iteration);
}

/// The distributed run produces the same *physics* as a purely local run
/// with identical kernels and schedule: the channel must not change the
/// science (the paper's multi-kernel invariant: "Which kernel is used has
/// no influence in the result of the simulation").
#[test]
fn distributed_and_local_physics_agree() {
    use jungle::amuse::channel::LocalChannel;
    use jungle::amuse::cluster::EmbeddedCluster;
    use jungle::amuse::{Bridge, BridgeConfig};

    let cluster = EmbeddedCluster::build(TOY_STARS, TOY_GAS, 0.5, 42);
    let (g, h, c, s) = cluster.local_workers(true);
    let mut cfg: BridgeConfig = cluster.bridge_config();
    cfg.substeps = SUBSTEPS;
    cfg.stellar_interval = 1;
    let mut local = Bridge::new(
        Box::new(LocalChannel::new(g)),
        Box::new(LocalChannel::new(h)),
        Box::new(LocalChannel::new(c)),
        Some(Box::new(LocalChannel::new(s))),
        cfg,
    );
    let local_rep = local.iteration();

    let distributed = run_scenario(Scenario::FullJungle, 1).result;
    assert_eq!(
        distributed.supernovae, local_rep.supernovae,
        "same ICs + same schedule => same stellar events regardless of channel"
    );
}

/// The paper's §5 limitation, reproduced: "If a reservation ends for a
/// resource, and the worker is killed by the scheduler, we cannot recover
/// from this fault, and the entire simulation crashes."
#[test]
fn worker_death_crashes_the_simulation() {
    assert!(run_crash_demo(), "losing a worker host must abort the coupled run");
}

/// Unit safety end-to-end: quantities crossing the coupler boundary are
/// dimension-checked (§4.1's "checked conversion of all these units").
#[test]
fn unit_checked_boundaries() {
    use jungle::units::{astro, si, Quantity};
    let cluster = jungle::amuse::cluster::EmbeddedCluster::build(8, 8, 0.5, 1);
    let m = Quantity::new(cluster.mass_unit_msun, astro::MSUN);
    // converting the cluster mass unit to kilograms works...
    assert!(m.value_in(si::KILOGRAM).unwrap() > 0.0);
    // ...converting it to metres is refused
    assert!(m.value_in(si::METER).is_err());
    // and the converter's G is 1 in code units
    let g_code = cluster.converter.to_nbody(astro::g()).unwrap();
    assert!((g_code - 1.0).abs() < 1e-9);
}
