//! Integration: sharded worker pools must be numerically invisible.
//!
//! The coupling kick evaluates each target independently against a tree
//! built from the sources alone, and SSE evolves each star
//! independently — so fanning those models over 1, 2, or 3 workers
//! (threads or TCP sockets) must reproduce the unsharded answers
//! *bitwise*. The finale runs the full embedded-cluster Bridge over real
//! TCP with the coupling model sharded across a pool of socket workers
//! and the stellar model sharded across threads, and checks the end
//! state equals the all-local, unsharded run bit for bit.

use jungle::amuse::channel::{Channel, LocalChannel, ThreadChannel};
use jungle::amuse::shard::{partition, ShardedChannel};
use jungle::amuse::socket::spawn_tcp_worker;
use jungle::amuse::worker::{
    CouplingWorker, GravityWorker, HydroWorker, ParticleData, Request, Response, StellarWorker,
};
use jungle::amuse::{Bridge, EmbeddedCluster, SocketChannel};
use jungle::nbody::plummer::plummer_sphere;
use jungle::nbody::Backend;

fn bitwise_eq(a: &ParticleData, b: &ParticleData) -> bool {
    let f = |x: &[f64], y: &[f64]| {
        x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
    };
    let v = |x: &[[f64; 3]], y: &[[f64; 3]]| {
        x.len() == y.len()
            && x.iter().zip(y).all(|(p, q)| (0..3).all(|k| p[k].to_bits() == q[k].to_bits()))
    };
    f(&a.mass, &b.mass) && v(&a.pos, &b.pos) && v(&a.vel, &b.vel)
}

/// Coupling scatter–gather over 1, 2, and 3 workers — thread pool and
/// socket pool both — against the unsharded answer.
#[test]
fn sharded_coupling_equivalence_over_threads_and_sockets() {
    let scene = plummer_sphere(151, 23);
    let mut reference = LocalChannel::new(Box::new(CouplingWorker::fi()));
    let expected = match reference.call(Request::ComputeKick {
        targets: scene.pos.clone(),
        source_pos: scene.pos.clone(),
        source_mass: scene.mass.clone(),
    }) {
        Response::Accelerations { acc, .. } => acc,
        other => panic!("{other:?}"),
    };

    for k in 1..=3usize {
        // thread pool
        let shards: Vec<Box<dyn Channel>> = (0..k)
            .map(|i| {
                Box::new(ThreadChannel::spawn(format!("fi-{i}"), CouplingWorker::fi))
                    as Box<dyn Channel>
            })
            .collect();
        check_pool(ShardedChannel::with_counts(shards, vec![0; k]), &scene, &expected, k);

        // socket pool
        let mut handles = Vec::new();
        let shards: Vec<Box<dyn Channel>> = (0..k)
            .map(|i| {
                let (addr, h) = spawn_tcp_worker(format!("fi-{i}"), CouplingWorker::fi);
                handles.push(h);
                Box::new(SocketChannel::connect(addr, format!("fi-{i}")).unwrap())
                    as Box<dyn Channel>
            })
            .collect();
        check_pool(ShardedChannel::with_counts(shards, vec![0; k]), &scene, &expected, k);
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }
}

fn check_pool(
    mut pool: ShardedChannel,
    scene: &jungle::nbody::ParticleSet,
    expected: &[[f64; 3]],
    k: usize,
) {
    // async scatter-gather path
    match pool.call(Request::ComputeKick {
        targets: scene.pos.clone(),
        source_pos: scene.pos.clone(),
        source_mass: scene.mass.clone(),
    }) {
        Response::Accelerations { acc, .. } => {
            assert_eq!(acc.len(), expected.len(), "k={k}");
            for (a, b) in acc.iter().zip(expected) {
                for j in 0..3 {
                    assert_eq!(a[j].to_bits(), b[j].to_bits(), "k={k}");
                }
            }
        }
        other => panic!("k={k}: {other:?}"),
    }
    // borrowing fast path
    let mut acc = Vec::new();
    let flops = pool
        .compute_kick_into(&scene.pos, &scene.pos, &scene.mass, &mut acc)
        .expect("sharded compute_kick_into");
    assert!(flops > 0.0);
    for (a, b) in acc.iter().zip(expected) {
        for j in 0..3 {
            assert_eq!(a[j].to_bits(), b[j].to_bits(), "k={k} fast path");
        }
    }
}

/// Range-sharded gravity state ops (snapshot / kick / set-masses)
/// against the unsharded worker, over sockets.
#[test]
fn sharded_state_ops_equivalence_over_sockets() {
    let ics = plummer_sphere(40, 31);
    let dv: Vec<[f64; 3]> = (0..40).map(|i| [1e-4 * i as f64, -2e-5, 3e-5 * i as f64]).collect();
    let masses: Vec<f64> = (0..40).map(|i| 0.02 + 1e-4 * i as f64).collect();

    let mut single = LocalChannel::new(Box::new(GravityWorker::new(ics.clone(), Backend::Scalar)));
    assert!(matches!(single.call(Request::Kick(dv.clone())), Response::Ok { .. }));
    assert!(matches!(single.call(Request::SetMasses(masses.clone())), Response::Ok { .. }));
    let mut expected = ParticleData::default();
    assert!(single.snapshot_into(&mut expected));

    for k in [2usize, 3] {
        let counts = partition(40, k);
        let mut handles = Vec::new();
        let mut off = 0usize;
        let shards: Vec<Box<dyn Channel>> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let sub = ics.slice(off, off + c);
                off += c;
                let (addr, h) = spawn_tcp_worker(format!("grav-{i}"), move || {
                    GravityWorker::new(sub, Backend::Scalar)
                });
                handles.push(h);
                Box::new(SocketChannel::connect(addr, format!("grav-{i}")).unwrap())
                    as Box<dyn Channel>
            })
            .collect();
        let mut pool = ShardedChannel::new(shards);
        assert_eq!(pool.total_particles(), 40);
        assert_eq!(pool.worker_name(), format!("grav-0×{k}"));

        let r = pool.kick_slice(&dv);
        assert!(matches!(r, Response::Ok { .. }), "k={k}: {r:?}");
        let r = pool.call(Request::SetMasses(masses.clone()));
        assert!(matches!(r, Response::Ok { .. }), "k={k}: {r:?}");
        let mut got = ParticleData::default();
        assert!(pool.snapshot_into(&mut got));
        assert!(bitwise_eq(&got, &expected), "k={k}: sharded state diverged");

        drop(pool);
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }
}

/// The acceptance scenario: a Bridge over real TCP whose coupling model
/// is a pool of ≥2 sharded socket workers (and whose stellar model is a
/// sharded thread pool), bitwise-identical to the unsharded all-local
/// run.
#[test]
fn bridge_with_sharded_socket_pool_matches_local_run() {
    let c = EmbeddedCluster::build(21, 84, 0.5, 29);

    // --- reference: all-local, unsharded -------------------------------
    let mut cfg = c.bridge_config();
    cfg.substeps = 2;
    cfg.stellar_interval = 1;
    let mut local = Bridge::new(
        Box::new(LocalChannel::new(Box::new(GravityWorker::new(c.stars.clone(), Backend::Scalar)))),
        Box::new(LocalChannel::new(Box::new(HydroWorker::new(c.gas.clone())))),
        Box::new(LocalChannel::new(Box::new(CouplingWorker::fi()))),
        Some(Box::new(LocalChannel::new(Box::new(StellarWorker::new(
            c.star_masses_msun.clone(),
            0.02,
        ))))),
        cfg.clone(),
    );
    for _ in 0..2 {
        local.iteration();
    }
    let (stars_ref, gas_ref) = local.snapshots();

    // --- distributed: TCP workers, sharded coupling + stellar ----------
    let (stars, gas) = (c.stars.clone(), c.gas.clone());
    let (g_addr, g_h) =
        spawn_tcp_worker("grav", move || GravityWorker::new(stars, Backend::Scalar));
    let (h_addr, h_h) = spawn_tcp_worker("hydro", move || HydroWorker::new(gas));

    let mut handles = vec![g_h, h_h];
    let coupling_shards: Vec<Box<dyn Channel>> = (0..3)
        .map(|i| {
            let (addr, h) = spawn_tcp_worker(format!("fi-{i}"), CouplingWorker::fi);
            handles.push(h);
            Box::new(SocketChannel::connect(addr, format!("fi-{i}")).unwrap()) as Box<dyn Channel>
        })
        .collect();
    let coupling = ShardedChannel::with_counts(coupling_shards, vec![0; 3]);

    let star_counts = partition(c.star_masses_msun.len(), 2);
    let mut off = 0usize;
    let stellar_shards: Vec<Box<dyn Channel>> = star_counts
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let imf = c.star_masses_msun[off..off + n].to_vec();
            off += n;
            Box::new(ThreadChannel::spawn(format!("sse-{i}"), move || {
                StellarWorker::new(imf, 0.02)
            })) as Box<dyn Channel>
        })
        .collect();
    let stellar = ShardedChannel::with_counts(stellar_shards, vec![0; 2]);

    let mut bridge = Bridge::new(
        Box::new(SocketChannel::connect(g_addr, "grav").unwrap()),
        Box::new(SocketChannel::connect(h_addr, "hydro").unwrap()),
        Box::new(coupling),
        Some(Box::new(stellar)),
        cfg,
    );
    for _ in 0..2 {
        bridge.iteration();
    }
    let (stars_tcp, gas_tcp) = bridge.snapshots();

    let (_, _, coupling_stats, stellar_stats) = bridge.channel_stats();
    assert!(coupling_stats.calls > 0, "sharded coupling pool unused");
    assert!(stellar_stats.unwrap().calls > 0, "sharded stellar pool unused");

    drop(bridge);
    for h in handles {
        h.join().unwrap().unwrap();
    }

    assert!(bitwise_eq(&stars_tcp, &stars_ref), "sharded TCP run diverged (stars)");
    assert!(bitwise_eq(&gas_tcp, &gas_ref), "sharded TCP run diverged (gas)");
}
