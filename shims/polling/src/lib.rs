//! Offline shim for the `polling` crate: the small readiness-polling
//! surface the workspace actually uses — register sockets under a
//! `usize` key, wait for readability/writability with a timeout.
//!
//! Like the other shims, this is dependency-free. On Unix the
//! implementation is the classic `poll(2)` system call, reached through
//! the libc that `std` already links (no new crates); elsewhere it
//! degrades to "everything registered is always ready", which is
//! correct — the caller's non-blocking I/O simply observes
//! `WouldBlock` — just not idle-efficient. Readiness is level-triggered
//! (the real crate's oneshot mode is not reproduced: the one consumer,
//! `jc_amuse::reactor`, re-states interest before every wait anyway).

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::sync::Mutex;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};

/// Fallback "fd" type where no raw-fd notion exists.
#[cfg(not(unix))]
type RawFd = usize;

/// Interest in (and readiness of) one registered source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The caller's key for the source (the reactor's connection token).
    pub key: usize,
    /// Interested in / ready for reading.
    pub readable: bool,
    /// Interested in / ready for writing.
    pub writable: bool,
}

impl Event {
    /// Interest in readability only.
    pub fn readable(key: usize) -> Event {
        Event { key, readable: true, writable: false }
    }

    /// Interest in writability only.
    pub fn writable(key: usize) -> Event {
        Event { key, readable: false, writable: true }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Event {
        Event { key, readable: true, writable: true }
    }

    /// No interest (parked source: registered but never ready).
    pub fn none(key: usize) -> Event {
        Event { key, readable: false, writable: false }
    }
}

/// Reusable buffer of readiness events filled by [`Poller::wait`].
#[derive(Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// An empty event buffer.
    pub fn new() -> Events {
        Events::default()
    }

    /// Iterate the events of the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().copied()
    }

    /// Number of events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// No events delivered?
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drop all buffered events (capacity is kept).
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

struct Slot {
    fd: RawFd,
    interest: Event,
}

/// The poller: a registry of sources plus a [`Poller::wait`] that
/// blocks until one of them is ready (or the timeout passes).
pub struct Poller {
    slots: Mutex<Vec<Slot>>,
}

impl Poller {
    /// Create an empty poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { slots: Mutex::new(Vec::new()) })
    }

    /// Register `source` with the interest (and key) in `interest`.
    /// Registering an already-registered fd is an error, as in the real
    /// crate.
    #[cfg(unix)]
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut slots = self.slots.lock().unwrap();
        if slots.iter().any(|s| s.fd == fd) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
        }
        slots.push(Slot { fd, interest });
        Ok(())
    }

    /// Update the interest (and key) of a registered source.
    #[cfg(unix)]
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut slots = self.slots.lock().unwrap();
        match slots.iter_mut().find(|s| s.fd == fd) {
            Some(slot) => {
                slot.interest = interest;
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    /// Deregister a source. Unknown fds error, as in the real crate.
    #[cfg(unix)]
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut slots = self.slots.lock().unwrap();
        match slots.iter().position(|s| s.fd == fd) {
            Some(i) => {
                slots.remove(i);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    /// Block until at least one registered source is ready or `timeout`
    /// passes (`None` blocks indefinitely). Ready events are appended
    /// to `events` (cleared first); returns how many. An interrupted
    /// wait (`EINTR`) is retried with the full timeout, so the only
    /// zero-event return is a genuine timeout.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.wait_impl(events, timeout)?;
        Ok(events.len())
    }

    #[cfg(unix)]
    fn wait_impl(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let slots = self.slots.lock().unwrap();
        let mut fds: Vec<sys::PollFd> = slots
            .iter()
            .map(|s| sys::PollFd {
                fd: s.fd,
                events: (if s.interest.readable { sys::POLLIN } else { 0 })
                    | (if s.interest.writable { sys::POLLOUT } else { 0 }),
                revents: 0,
            })
            .collect();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // round up so a sub-millisecond timeout still sleeps
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
        };
        loop {
            // SAFETY: `fds` is a live, properly sized array of repr(C)
            // pollfd structs for the duration of the call; poll(2) only
            // writes within `nfds` entries and std already links libc,
            // which provides the symbol.
            let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as sys::NFds, timeout_ms) };
            if rc >= 0 {
                break;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry with the full timeout (callers treat a
            // zero-event return as a real timeout)
        }
        for (pfd, slot) in fds.iter().zip(slots.iter()) {
            // errors and hangups count as readiness in both directions
            // the caller asked about: the subsequent non-blocking I/O
            // surfaces the actual condition
            let err = pfd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
            let readable = slot.interest.readable && (pfd.revents & sys::POLLIN != 0 || err);
            let writable = slot.interest.writable && (pfd.revents & sys::POLLOUT != 0 || err);
            if readable || writable {
                events.inner.push(Event { key: slot.interest.key, readable, writable });
            }
        }
        Ok(())
    }

    /// Portable fallback: report every registered source as ready for
    /// its stated interest. Busy, but correct: non-blocking I/O on a
    /// not-actually-ready socket returns `WouldBlock` and the caller
    /// waits again.
    #[cfg(not(unix))]
    fn wait_impl(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let slots = self.slots.lock().unwrap();
        for s in slots.iter() {
            if s.interest.readable || s.interest.writable {
                events.inner.push(s.interest);
            }
        }
        if events.inner.is_empty() {
            // nothing registered with interest: honor the timeout
            std::thread::sleep(timeout.unwrap_or(Duration::from_millis(10)));
        }
        Ok(())
    }
}

#[cfg(unix)]
mod sys {
    //! The raw `poll(2)` surface, declared directly against the libc
    //! `std` already links.

    /// `nfds_t`: `unsigned long` on the platforms this workspace runs.
    pub type NFds = std::os::raw::c_ulong;

    /// C `struct pollfd`.
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    // SAFETY: the signature matches POSIX poll(2) (int fds[], nfds_t,
    // int timeout); the symbol comes from the libc std itself links, so
    // it is present in every build of this workspace.
    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: NFds, timeout: i32) -> i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn connected_socket_is_writable_immediately() {
        let (a, _b) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&a, Event::writable(7)).unwrap();
        let mut events = Events::new();
        let n = poller.wait(&mut events, Some(Duration::from_millis(500))).unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 7);
        assert!(ev.writable);
    }

    #[test]
    fn readability_arrives_with_data_and_times_out_without() {
        let (a, mut b) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&a, Event::readable(3)).unwrap();
        let mut events = Events::new();
        let n = poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert_eq!(n, 0, "no data yet: timeout");
        b.write_all(b"ping").unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().unwrap().key, 3);
        let mut a = a;
        let mut buf = [0u8; 8];
        assert_eq!(a.read(&mut buf).unwrap(), 4);
    }

    #[test]
    fn modify_and_delete_update_the_registry() {
        let (a, b) = pair();
        let poller = Poller::new().unwrap();
        poller.add(&a, Event::none(1)).unwrap();
        assert!(poller.add(&a, Event::none(1)).is_err(), "double add");
        let mut events = Events::new();
        let n = poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0, "no interest, no events");
        poller.modify(&a, Event::writable(1)).unwrap();
        let n = poller.wait(&mut events, Some(Duration::from_millis(500))).unwrap();
        assert_eq!(n, 1);
        poller.delete(&a).unwrap();
        assert!(poller.delete(&a).is_err(), "double delete");
        let n = poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0);
        drop(b);
    }

    #[test]
    fn hangup_reports_readiness_to_a_read_interest() {
        let (a, b) = pair();
        drop(b);
        let poller = Poller::new().unwrap();
        poller.add(&a, Event::readable(9)).unwrap();
        let mut events = Events::new();
        let n = poller.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        assert_eq!(n, 1, "peer hangup must wake a reader");
        assert!(events.iter().next().unwrap().readable);
    }
}
