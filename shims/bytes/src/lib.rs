//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] here is an `Arc<[u8]>`: immutable, cheap to clone, and
//! sufficient for the IPL payload container this workspace uses. The
//! zero-copy slicing machinery of the real crate is not reproduced.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes { data: v.as_bytes().into() }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone_share_storage() {
        let b: Bytes = vec![1u8, 2, 3].into();
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}
