//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`strategy::Just`], `any::<T>()`,
//! [`collection::vec`], and the `proptest!` / `prop_assert*!` /
//! `prop_oneof!` macros. Each test runs a fixed number of random cases
//! (default 64, override with `PROPTEST_CASES`; seed with
//! `PROPTEST_SEED`). Failing inputs are reported via `Debug`; there is
//! no shrinking.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleRange, SeedableRng};

/// Everything a test module needs.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Test-case driver plumbing.
pub mod test_runner {
    use super::*;

    /// The RNG handed to strategies during sampling.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Deterministic RNG for one test function; `salt` decorrelates
        /// the stream per case.
        pub fn for_case(salt: u64) -> TestRng {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x9E37_79B9_7F4A_7C15);
            TestRng {
                inner: StdRng::seed_from_u64(seed ^ salt.wrapping_mul(0xA24B_AED4_963E_E407)),
            }
        }

        /// Raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform draw from a range.
        pub fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
            self.inner.gen_range(range)
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Cases to run per property.
        pub cases: u64,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases: cases as u64 }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Cases per property: the block's config, unless the env var
    /// `PROPTEST_CASES` overrides it.
    pub fn cases(config: ProptestConfig) -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(config.cases)
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    ///
    /// Object-safe: `sample` takes a concrete RNG, combinators require
    /// `Self: Sized`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generate a value, then build a dependent strategy from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Box the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, O, F> Strategy for Map<B, F>
    where
        B: Strategy,
        F: Fn(B::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// `prop_flat_map` adapter.
    pub struct FlatMap<B, F> {
        base: B,
        f: F,
    }

    impl<B, S, F> Strategy for FlatMap<B, F>
    where
        B: Strategy,
        S: Strategy,
        F: Fn(B::Value) -> S,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from at least one alternative.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `any::<T>()` support.
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`crate::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any { _marker: std::marker::PhantomData }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Unconstrained values of `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size arguments for [`vec()`]: a fixed length or a range.
    pub trait IntoSizeRange {
        /// (min, max) inclusive bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range for collection::vec");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Vectors whose elements come from `element` and whose length is
    /// drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                if self.min == self.max { self.min } else { rng.gen_range(self.min..=self.max) };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// Run each annotated function against many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@config ($config:expr) $(
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let cases = $crate::test_runner::cases($config);
            for case in 0..cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        cases,
                        msg
                    );
                }
            }
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Assert a condition, failing the current case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality, failing the current case with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Assert inequality, failing the current case with the shared value.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Uniformly choose between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($alt)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u8, u8)> {
        (0u8..10, 0u8..10)
    }

    proptest! {
        /// Sampled values stay in range.
        #[test]
        fn ranges_hold(x in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f), "f = {}", f);
        }

        /// Tuple patterns destructure.
        #[test]
        fn tuples_destructure((a, b) in arb_pair()) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_ne!((a as u16) + 300, b as u16);
        }

        /// flat_map + collection::vec sizes are respected.
        #[test]
        fn vec_sizes(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u64..100, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        /// prop_oneof picks only listed alternatives.
        #[test]
        fn oneof_picks_listed(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }
    }

    #[test]
    fn prop_assert_macros_surface_failures() {
        let run = |x: u8| -> Result<(), String> {
            prop_assert!(x < 100, "x was {}", x);
            prop_assert_eq!(x, 200u8);
            Ok(())
        };
        let err = run(3).unwrap_err();
        assert!(err.contains("left"), "got: {err}");
        let err = run(150).unwrap_err();
        assert!(err.contains("x was 150"), "got: {err}");
    }
}
