//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! The build container has no crates.io access, so this path crate
//! provides the small surface the workspace uses: `StdRng` seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! and float ranges. The generator is xoshiro256++, which is more than
//! adequate for simulation sampling; it is *not* cryptographic.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that a range can produce uniformly.
pub trait SampleRange<T> {
    /// Draw one value from `self` using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high-quality bits -> [0, 1)
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // full-width inclusive range of a 128-bit type cannot occur here
                    return rng.next_u64() as $t;
                }
                let draw = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize);

macro_rules! signed_ranges {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

signed_ranges!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_ranges!(f32, f64);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ behind the `StdRng` name.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 seed expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1 << 60), b.gen_range(0u64..1 << 60));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = r.gen_range(5usize..8);
            assert!((5..8).contains(&i));
            let s = r.gen_range(-4i8..=4);
            assert!((-4..=4).contains(&s));
        }
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f = r.gen_range(0.0f64..1.0);
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "poor spread");
    }
}
