//! Offline stand-in for `rayon`.
//!
//! Supports the pipelines this workspace uses —
//! `par_iter() / into_par_iter()` followed by `enumerate` / `zip` /
//! `map` and terminated by `collect` / `sum` / `for_each` — with real
//! parallelism: the element list is materialized, split into one
//! contiguous chunk per available core, and mapped on scoped threads.
//! Order is preserved, so results are identical to the sequential
//! evaluation (the nbody tests assert bitwise backend equality).

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// How many worker threads a parallel stage may use: the `JC_THREADS`
/// environment override when set to a positive integer (reproducible
/// runs on shared machines — same knob as `jc_compute::par`), otherwise
/// one per available core. The environment is read *per resolution* —
/// not cached — so a mid-process `JC_THREADS` change (perfsuite's
/// thread-sweep rows, test harnesses) takes effect on the next
/// pipeline; only the core count, which cannot change, is cached.
fn threads_for(len: usize) -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let cap = std::env::var("JC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| {
            *CORES.get_or_init(|| {
                std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
            })
        });
    cap.min(len).max(1)
}

/// Order-preserving parallel map over an owned vector.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = threads_for(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut source = items;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    while source.len() > chunk {
        let tail = source.split_off(source.len() - chunk);
        chunks.push(tail);
    }
    chunks.push(source);
    // chunks are in reverse order: [tail ... head]
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut parts: Vec<Vec<R>> =
            handles.into_iter().map(|h| h.join().expect("rayon-shim worker panicked")).collect();
        parts.reverse();
        parts.into_iter().flatten().collect()
    })
}

/// A (lazy) parallel pipeline. `into_vec` drives it.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Evaluate the pipeline, preserving element order.
    fn into_vec(self) -> Vec<Self::Item>;

    /// Parallel map: the workhorse stage.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Pair each element with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Zip with another parallel iterator (shorter side truncates).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Collect into any `FromIterator` container.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.into_vec().into_iter().collect()
    }

    /// Sum the elements.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.into_vec().into_iter().sum()
    }

    /// Apply `f` to every element (driven in parallel via `map`).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = parallel_map(self.into_vec(), &|x| f(x));
    }
}

/// Eagerly materialized source stage.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn into_vec(self) -> Vec<T> {
        self.items
    }
}

/// `map` stage: the only stage that actually fans out to threads.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;
    fn into_vec(self) -> Vec<R> {
        parallel_map(self.base.into_vec(), &self.f)
    }
}

/// `enumerate` stage.
pub struct Enumerate<B> {
    base: B,
}

impl<B: ParallelIterator> ParallelIterator for Enumerate<B> {
    type Item = (usize, B::Item);
    fn into_vec(self) -> Vec<(usize, B::Item)> {
        self.base.into_vec().into_iter().enumerate().collect()
    }
}

/// `zip` stage.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn into_vec(self) -> Vec<(A::Item, B::Item)> {
        self.a.into_vec().into_iter().zip(self.b.into_vec()).collect()
    }
}

/// Entry point for owned collections and ranges: `x.into_par_iter()`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Pipeline source type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Start a parallel pipeline.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    type Iter = VecParIter<I::Item>;
    fn into_par_iter(self) -> VecParIter<I::Item> {
        VecParIter { items: self.into_iter().collect() }
    }
}

/// Entry point for borrowed slices: `x.par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: Send;
    /// Pipeline source type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Start a parallel pipeline over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;
    fn par_iter(&'a self) -> VecParIter<&'a T> {
        VecParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;
    fn par_iter(&'a self) -> VecParIter<&'a T> {
        VecParIter { items: self.iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_enumerate_matches_sequential() {
        let data: Vec<f64> = (0..257).map(|i| i as f64).collect();
        let out: Vec<f64> = data.par_iter().enumerate().map(|(i, x)| x + i as f64).collect();
        let seq: Vec<f64> = data.iter().enumerate().map(|(i, x)| x + i as f64).collect();
        assert_eq!(out, seq);
    }

    #[test]
    fn zip_and_sum() {
        let a = vec![1u64, 2, 3];
        let b = vec![10u64, 20, 30];
        let s: u64 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum();
        assert_eq!(s, 10 + 40 + 90);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = Vec::<u8>::new().par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
