//! Offline stand-in for `crossbeam`.
//!
//! Only `crossbeam::channel` is provided, backed by `std::sync::mpsc`.
//! The workspace uses `unbounded`, `bounded`, `send`, `recv`,
//! `try_recv` and `recv_timeout`; senders are cloneable like the real
//! crate's. (std receivers are not cloneable — none of our call sites
//! clone them.)

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Sending half; unifies std's bounded/unbounded sender types.
    pub enum Sender<T> {
        /// From [`unbounded`].
        Unbounded(mpsc::Sender<T>),
        /// From [`bounded`]; `send` blocks when the buffer is full.
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            match self {
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
            }
        }
    }

    /// Error returned when the receiving side has hung up.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Like the real crate: usable in `expect` without `T: Debug`.
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking on a full bounded buffer.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Sender::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Blocking iterator over incoming messages.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// Channel with no backpressure.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { inner: rx })
    }

    /// Channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert!(rx.recv().is_err());
        }

        #[test]
        fn bounded_blocks_at_capacity() {
            let (tx, rx) = bounded::<u8>(1);
            let t = std::thread::spawn(move || {
                tx.send(1).unwrap();
                tx.send(2).unwrap(); // blocks until the first is drained
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop((tx, tx2));
            let mut got: Vec<u8> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
