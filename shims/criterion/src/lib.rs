//! Offline stand-in for `criterion`.
//!
//! Provides the macro/builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! `Throughput`, `BatchSize`, `black_box`) with a simple
//! median-of-samples timing loop instead of criterion's full
//! statistical machinery. Good enough to keep the paper-figure benches
//! runnable and honest about relative cost; not a precision harness.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a batched iteration sizes its batches (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measurement.
    PerIteration,
}

/// Declared throughput of one iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes moved per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    last_ns: f64,
}

impl Bencher {
    /// Time `routine`, repeated over the sample budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            best = best.min(t0.elapsed().as_secs_f64() * 1e9);
        }
        self.last_ns = best;
    }

    /// Time `routine` on fresh input from `setup` each sample.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            best = best.min(t0.elapsed().as_secs_f64() * 1e9);
        }
        self.last_ns = best;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Cap measurement wall time (accepted, ignored by the shim).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.samples, last_ns: 0.0 };
        f(&mut b);
        self.report(&id.id, b.last_ns);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.samples, last_ns: 0.0 };
        f(&mut b, input);
        self.report(&id.id, b.last_ns);
        self
    }

    fn report(&self, id: &str, ns: f64) {
        match self.throughput {
            Some(Throughput::Bytes(bytes)) if ns > 0.0 => {
                let gibps = bytes as f64 / (ns / 1e9) / (1u64 << 30) as f64;
                println!("{}/{:<40} {:>12.1} ns  ({:.2} GiB/s)", self.name, id, ns, gibps);
            }
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                let meps = n as f64 / (ns / 1e9) / 1e6;
                println!("{}/{:<40} {:>12.1} ns  ({:.2} Melem/s)", self.name, id, ns, meps);
            }
            _ => println!("{}/{:<40} {:>12.1} ns", self.name, id, ns),
        }
    }

    /// Finish the group.
    pub fn finish(&mut self) {}
}

/// Top-level benchmark harness state.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: 10, throughput: None, _parent: self }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            samples: 10,
            throughput: None,
            _parent: self,
        };
        g.bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
