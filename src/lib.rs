//! # jungle — umbrella crate for the Jungle Computing / distributed AMUSE reproduction
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests can `use jungle::...`. See the README for the map of
//! the system and DESIGN.md for the full inventory.

#![deny(rustdoc::broken_intra_doc_links)]

pub use jc_amuse as amuse;
pub use jc_cesm as cesm;
pub use jc_compute as compute;
pub use jc_core as core;
pub use jc_deploy as deploy;
pub use jc_gat as gat;
pub use jc_ipl as ipl;
pub use jc_nbody as nbody;
pub use jc_netsim as netsim;
pub use jc_service as service;
pub use jc_smartsockets as smartsockets;
pub use jc_sph as sph;
pub use jc_stellar as stellar;
pub use jc_treegrav as treegrav;
pub use jc_units as units;
pub use jc_zorilla as zorilla;
