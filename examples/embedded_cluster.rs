//! The Fig 6 experiment: evolution of an embedded star cluster until the
//! gas is expelled. Workers run on real OS threads (the AMUSE socket
//! channel equivalent), so the evolves genuinely overlap.
//!
//! ```text
//! cargo run --release --example embedded_cluster
//! ```

use jungle::amuse::channel::ThreadChannel;
use jungle::amuse::cluster::{bound_gas_fraction, half_mass_radius, EmbeddedCluster};
use jungle::amuse::worker::{CouplingWorker, GravityWorker, HydroWorker, StellarWorker};
use jungle::amuse::Bridge;
use jungle::nbody::Backend;

fn main() {
    let cluster = EmbeddedCluster::build(48, 192, 0.5, 39);
    println!(
        "embedded cluster: {} stars + {} gas, {:.0} MSun total, t_unit = {:.2} Myr",
        cluster.stars.len(),
        cluster.gas.len(),
        cluster.mass_unit_msun,
        cluster.time_unit_myr
    );

    let stars = cluster.stars.clone();
    let gas = cluster.gas.clone();
    let imf = cluster.star_masses_msun.clone();
    let gravity =
        ThreadChannel::spawn("phigrape", move || GravityWorker::new(stars, Backend::CpuParallel));
    let hydro = ThreadChannel::spawn("gadget", move || HydroWorker::new(gas));
    let coupling = ThreadChannel::spawn("fi", CouplingWorker::fi);
    let stellar = ThreadChannel::spawn("sse", move || StellarWorker::new(imf, 0.02));

    let mut cfg = cluster.bridge_config();
    cfg.substeps = 8;
    cfg.stellar_interval = 1;
    let mut bridge = Bridge::new(
        Box::new(gravity),
        Box::new(hydro),
        Box::new(coupling),
        Some(Box::new(stellar)),
        cfg,
    );

    // Fig 6 shows four stages: (a) initial, (b) gas expanding, (c) thin
    // shell, (d) gas removed. We print the observables at regular epochs.
    println!(
        "\n{:>6} {:>9} {:>11} {:>11} {:>11} {:>5}",
        "iter", "t [Myr]", "bound gas", "r_h stars", "r_h gas", "SNe"
    );
    let total_iterations = 24;
    let mut sne_total = 0;
    for i in 0..total_iterations {
        let rep = bridge.iteration();
        sne_total += rep.supernovae;
        let (stars, gas) = bridge.snapshots();
        let stage = match i {
            0 => " (a) stars embedded in gas",
            8 => " (b) gas expanding",
            16 => " (c) thin shell remains",
            23 => " (d) gas expelled",
            _ => "",
        };
        println!(
            "{:>6} {:>9.2} {:>10.1}% {:>11.3} {:>11.3} {:>5}{}",
            i + 1,
            rep.time * cluster.time_unit_myr,
            bound_gas_fraction(&stars, &gas) * 100.0,
            half_mass_radius(&stars),
            half_mass_radius(&gas),
            sne_total,
            stage
        );
    }
    println!("\ntotal supernovae: {sne_total} (the bigger stars exploding, as in the paper)");
}
