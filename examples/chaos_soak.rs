//! Chaos soak harness: sweep a seed range of deterministic fault
//! schedules through the fault-tolerant bridge over live loopback TCP
//! shards, and verify every run converges bitwise to the fault-free
//! baseline.
//!
//! Each seed derives a `FaultPlan` (`KINDS[seed % 8]` is the primary
//! fault, so 8 consecutive seeds cover every site): connection
//! refusals, read/write timeouts, short reads, torn frames, corrupted
//! headers, worker crashes, and checkpoint truncations. Transient
//! faults are absorbed in place by the socket channel's
//! sequence-numbered resend; crashes take the heavy path (supervisor
//! respawn + checkpoint restore + replay). Either way the final state
//! must be bit-for-bit the fault-free one.
//!
//! ```text
//! cargo run --release --example chaos_soak -- --seeds 32
//! cargo run --release --example chaos_soak -- --start 64 --seeds 64 --report diverging.txt
//! ```
//!
//! Any diverging seed is printed as `JC_CHAOS_SEED=<n>` (and written to
//! the `--report` file for CI artifacts); the seed alone reproduces the
//! schedule. Exit status is nonzero if any seed diverges.

use jungle::amuse::channel::{Channel, LocalChannel};
use jungle::amuse::chaos::{FaultPlan, RetryPolicy, KINDS};
use jungle::amuse::shard::ShardedChannel;
use jungle::amuse::socket::{spawn_flaky_tcp_worker, spawn_tcp_worker};
use jungle::amuse::worker::{
    CouplingWorker, GravityWorker, HydroWorker, ParticleData, StellarWorker,
};
use jungle::amuse::{
    Bridge, BridgeConfig, ChaosWriter, Checkpoint, EmbeddedCluster, RecoveryPolicy, SocketChannel,
};
use jungle::nbody::Backend;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::AtomicI64;
use std::sync::Arc;

const ITERATIONS: u32 = 4;

fn cluster() -> EmbeddedCluster {
    EmbeddedCluster::build(32, 128, 0.5, 23)
}

fn config(c: &EmbeddedCluster) -> BridgeConfig {
    let mut cfg = c.bridge_config();
    cfg.substeps = 2;
    cfg.stellar_interval = 2;
    cfg
}

fn bitwise_eq(a: &ParticleData, b: &ParticleData) -> bool {
    let f = |x: &[f64], y: &[f64]| {
        x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
    };
    let v = |x: &[[f64; 3]], y: &[[f64; 3]]| {
        x.len() == y.len()
            && x.iter().zip(y).all(|(p, q)| (0..3).all(|k| p[k].to_bits() == q[k].to_bits()))
    };
    f(&a.mass, &b.mass) && v(&a.pos, &b.pos) && v(&a.vel, &b.vel)
}

struct Reference {
    stars: ParticleData,
    gas: ParticleData,
    supernovae: u32,
    time: f64,
}

fn baseline() -> Reference {
    let c = cluster();
    let mut bridge = Bridge::new(
        Box::new(LocalChannel::new(Box::new(GravityWorker::new(c.stars.clone(), Backend::Scalar)))),
        Box::new(LocalChannel::new(Box::new(HydroWorker::new(c.gas.clone())))),
        Box::new(LocalChannel::new(Box::new(CouplingWorker::fi()))),
        Some(Box::new(LocalChannel::new(Box::new(StellarWorker::new(
            c.star_masses_msun.clone(),
            0.02,
        ))))),
        config(&c),
    );
    for _ in 0..ITERATIONS {
        bridge.iteration();
    }
    let (stars, gas) = bridge.snapshots();
    Reference { stars, gas, supernovae: bridge.total_supernovae(), time: bridge.model_time() }
}

/// One seeded schedule over a live TCP cluster with `k` coupling
/// shards. `Ok((recoveries, retries))` on bitwise convergence.
fn run_seed(seed: u64, k: usize, reference: &Reference) -> Result<(u32, u64), String> {
    let plan = FaultPlan::seeded(seed);
    let c = cluster();
    let mut handles = Vec::new();
    let respawned: Rc<RefCell<Vec<std::thread::JoinHandle<std::io::Result<()>>>>> =
        Rc::new(RefCell::new(Vec::new()));

    let (stars_ics, gas_ics, imf) = (c.stars.clone(), c.gas.clone(), c.star_masses_msun.clone());
    let (g_addr, g_h) =
        spawn_tcp_worker("grav", move || GravityWorker::new(stars_ics, Backend::Scalar));
    let (h_addr, h_h) = spawn_tcp_worker("hydro", move || HydroWorker::new(gas_ics));
    let (s_addr, s_h) = spawn_tcp_worker("sse", move || StellarWorker::new(imf, 0.02));
    handles.extend([g_h, h_h, s_h]);

    let retry =
        RetryPolicy { backoff_base_ms: 1, backoff_max_ms: 8, ..RetryPolicy::standard(seed) };
    let shards: Vec<Box<dyn Channel>> = (0..k)
        .map(|i| {
            let fuse = Arc::new(AtomicI64::new(plan.crash_fuse(k, i).unwrap_or(i64::MAX)));
            let (addr, h) = spawn_flaky_tcp_worker(format!("fi-{i}"), CouplingWorker::fi, fuse);
            handles.push(h);
            let ch = SocketChannel::connect(addr, format!("fi-{i}"))
                .expect("connect shard")
                .with_retry(retry)
                .with_chaos(plan.stream_faults(k, i));
            Box::new(ch) as Box<dyn Channel>
        })
        .collect();

    let respawned_c = respawned.clone();
    let supervisor = move |i: usize| -> Option<Box<dyn Channel>> {
        let (addr, h) = spawn_tcp_worker(format!("fi-{i}-respawn"), CouplingWorker::fi);
        respawned_c.borrow_mut().push(h);
        Some(Box::new(SocketChannel::connect(addr, format!("fi-{i}-respawn")).ok()?)
            as Box<dyn Channel>)
    };
    let pool =
        ShardedChannel::with_counts(shards, vec![0; k]).with_supervisor(Box::new(supervisor));

    let mut bridge = Bridge::new(
        Box::new(SocketChannel::connect(g_addr, "grav").expect("connect gravity")),
        Box::new(SocketChannel::connect(h_addr, "hydro").expect("connect hydro")),
        Box::new(pool),
        Some(Box::new(SocketChannel::connect(s_addr, "sse").expect("connect stellar"))),
        config(&c),
    );

    let policy = RecoveryPolicy { max_retries: 4, checkpoint_interval: 1 };
    let mut checkpoint: Option<Checkpoint> = None;
    let mut recoveries = 0u32;
    for _ in 0..ITERATIONS {
        let (_rep, rec) = bridge
            .iteration_recovering(&mut checkpoint, &policy)
            .map_err(|e| format!("iteration failed: {e}"))?;
        recoveries += rec;
    }

    // Lying-disk leg: a truncated save must fail the CRC-guarded load,
    // and the intact save must still round-trip.
    if let Some(keep) = plan.checkpoint_truncation(k) {
        let ck = checkpoint.as_ref().expect("checkpoint_interval=1 keeps one");
        let mut torn = Vec::new();
        ck.write_to(&mut ChaosWriter::new(&mut torn, keep))
            .map_err(|e| format!("lying disk surfaced: {e}"))?;
        if Checkpoint::read_from(&mut std::io::Cursor::new(&torn)).is_ok() {
            return Err(format!("{keep}-byte truncated checkpoint loaded as valid"));
        }
        let mut good = Vec::new();
        ck.write_to(&mut good).map_err(|e| format!("intact save failed: {e}"))?;
        Checkpoint::read_from(&mut std::io::Cursor::new(&good))
            .map_err(|e| format!("intact checkpoint failed to load: {e}"))?;
    }

    let retries = bridge.channel_stats().2.retries;
    let (stars, gas) = bridge.snapshots();
    if bridge.model_time().to_bits() != reference.time.to_bits() {
        return Err("model time diverged".into());
    }
    if bridge.total_supernovae() != reference.supernovae {
        return Err("supernova count diverged".into());
    }
    if !bitwise_eq(&stars, &reference.stars) {
        return Err("star state diverged".into());
    }
    if !bitwise_eq(&gas, &reference.gas) {
        return Err("gas state diverged".into());
    }

    drop(bridge);
    for h in handles {
        h.join().expect("server thread").map_err(|e| format!("server errored: {e}"))?;
    }
    for h in Rc::try_unwrap(respawned).expect("bridge dropped").into_inner() {
        h.join().expect("respawned thread").map_err(|e| format!("respawn errored: {e}"))?;
    }
    Ok((recoveries, retries))
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos_soak [--start N] [--seeds N] [--report PATH]\n\
         \n\
         --start N     first seed of the sweep           (default 0)\n\
         --seeds N     how many consecutive seeds to run (default 32)\n\
         --report PATH write diverging seeds here        (default chaos-divergence.txt)"
    );
    std::process::exit(2);
}

fn main() {
    let mut start = 0u64;
    let mut seeds = 32u64;
    let mut report = String::from("chaos-divergence.txt");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--start" => start = value(i).parse().unwrap_or_else(|_| usage()),
            "--seeds" => seeds = value(i).parse().unwrap_or_else(|_| usage()),
            "--report" => report = value(i),
            _ => usage(),
        }
        i += 2;
    }

    println!("chaos soak: seeds {start}..{} over loopback TCP", start + seeds);
    println!("  {} fault sites, primary = KINDS[seed % {}]\n", KINDS.len(), KINDS.len());
    let reference = baseline();

    let mut diverging: Vec<String> = Vec::new();
    let (mut total_recoveries, mut total_retries) = (0u64, 0u64);
    for seed in start..start + seeds {
        let k = 1 + (seed as usize % 3);
        let primary = FaultPlan::seeded(seed).schedule(k)[0].kind;
        match run_seed(seed, k, &reference) {
            Ok((recoveries, retries)) => {
                total_recoveries += u64::from(recoveries);
                total_retries += retries;
                println!(
                    "  seed {seed:>4}  k={k}  {primary:<18?} converged  \
                     (retries {retries}, recoveries {recoveries})"
                );
            }
            Err(e) => {
                println!("  seed {seed:>4}  k={k}  {primary:<18?} DIVERGED: {e}");
                diverging.push(format!("JC_CHAOS_SEED={seed} (k={k}, {primary:?}): {e}"));
            }
        }
    }

    println!(
        "\n{} seeds: {} converged, {} diverged  \
         ({total_retries} in-place retries, {total_recoveries} restore recoveries)",
        seeds,
        seeds as usize - diverging.len(),
        diverging.len(),
    );
    if !diverging.is_empty() {
        std::fs::write(&report, diverging.join("\n") + "\n").expect("write divergence report");
        eprintln!("diverging seeds written to {report}");
        std::process::exit(1);
    }
}
