//! Quickstart: couple the four models locally and run a few bridge steps.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use jungle::amuse::channel::LocalChannel;
use jungle::amuse::cluster::{bound_gas_fraction, half_mass_radius, EmbeddedCluster};
use jungle::amuse::Bridge;

fn main() {
    // 1. Build an embedded star cluster: 64 stars (Salpeter IMF) inside a
    //    gas sphere holding half the total mass.
    let cluster = EmbeddedCluster::build(64, 256, 0.5, 2026);
    println!(
        "cluster: {} stars + {} gas particles, mass unit = {:.0} MSun, time unit = {:.2} Myr",
        cluster.stars.len(),
        cluster.gas.len(),
        cluster.mass_unit_msun,
        cluster.time_unit_myr
    );

    // 2. Create the workers (CPU kernels: Fi + PhiGRAPE-CPU) and wire them
    //    to the coupler through local channels.
    let (gravity, hydro, coupling, stellar) = cluster.local_workers(false);
    let mut cfg = cluster.bridge_config();
    cfg.substeps = 4;
    cfg.stellar_interval = 1;
    let mut bridge = Bridge::new(
        Box::new(LocalChannel::new(gravity)),
        Box::new(LocalChannel::new(hydro)),
        Box::new(LocalChannel::new(coupling)),
        Some(Box::new(LocalChannel::new(stellar))),
        cfg,
    );

    // 3. Run a few iterations of the Fig 7 combined solver.
    println!(
        "\n{:>5} {:>9} {:>12} {:>12} {:>9} {:>6}",
        "iter", "t [Myr]", "bound gas", "r_h stars", "calls", "SNe"
    );
    for i in 0..6 {
        let rep = bridge.iteration();
        let (stars, gas) = bridge.snapshots();
        println!(
            "{:>5} {:>9.3} {:>11.1}% {:>12.3} {:>9} {:>6}",
            i + 1,
            rep.time * cluster.time_unit_myr,
            bound_gas_fraction(&stars, &gas) * 100.0,
            half_mass_radius(&stars),
            rep.calls,
            rep.supernovae,
        );
    }

    let (g, h, c, s) = bridge.channel_stats();
    println!(
        "\nchannel traffic: gravity {} B, hydro {} B, coupling {} B, stellar {} B",
        g.bytes_in + g.bytes_out,
        h.bytes_in + h.bytes_out,
        c.bytes_in + c.bytes_out,
        s.map(|x| x.bytes_in + x.bytes_out).unwrap_or(0)
    );
}
