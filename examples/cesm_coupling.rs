//! The second 3MK example (§4.2): a miniature CESM — four climate
//! components behind a central flux coupler, plus the node-layout cost
//! exploration the paper says CESM users must do by hand.
//!
//! ```text
//! cargo run --release --example cesm_coupling
//! ```

use jungle::cesm::models::{ActiveComponent, DataComponent};
use jungle::cesm::{Component, ComponentKind, Coupler, GridField, Layout};

fn main() {
    // Fully active configuration.
    let comps: Vec<Box<dyn Component>> = vec![
        Box::new(ActiveComponent::new(ComponentKind::Atmosphere, 16, 16, 10.0)),
        Box::new(ActiveComponent::new(ComponentKind::Ocean, 16, 16, 20.0)),
        Box::new(ActiveComponent::new(ComponentKind::Land, 16, 16, 5.0)),
        Box::new(ActiveComponent::new(ComponentKind::SeaIce, 16, 16, 1.0)),
    ];
    let mut cpl = Coupler::new(comps, 16, 16);
    println!("fully-active CESM run:");
    for epoch in 1..=5 {
        let s = cpl.run(20);
        println!(
            "  step {:>3}: global mean flux {:.4}, routed {:.1}",
            s.steps, s.global_mean, s.routed_flux
        );
        let _ = epoch;
    }

    // Data-ocean configuration (replay instead of compute).
    let series: Vec<GridField> =
        (0..4).map(|i| GridField::constant(16, 16, 0.2 + 0.05 * i as f64)).collect();
    let comps: Vec<Box<dyn Component>> = vec![
        Box::new(ActiveComponent::new(ComponentKind::Atmosphere, 16, 16, 10.0)),
        Box::new(DataComponent::new(ComponentKind::Ocean, series)),
        Box::new(ActiveComponent::new(ComponentKind::Land, 16, 16, 5.0)),
        Box::new(ActiveComponent::new(ComponentKind::SeaIce, 16, 16, 1.0)),
    ];
    let mut cpl = Coupler::new(comps, 16, 16);
    let s = cpl.run(50);
    println!("\ndata-ocean variant after {} steps: global mean {:.4}", s.steps, s.global_mean);

    // Layout exploration: partitioned vs shared over a node range.
    println!("\nnode-layout cost (one coupling interval, relative units):");
    println!(
        "  {:>6} {:>14} {:>14} {:>12} {:>12}",
        "nodes", "part makespan", "shared makespan", "part util", "shared util"
    );
    for nodes in [5u32, 8, 12, 16, 32] {
        let p = Layout::partitioned(nodes).cost();
        let sh = Layout::shared(nodes).cost();
        println!(
            "  {:>6} {:>14.3} {:>14.3} {:>11.0}% {:>11.0}%",
            nodes,
            p.makespan,
            sh.makespan,
            p.utilization * 100.0,
            sh.utilization * 100.0
        );
    }
    println!(
        "\n(the sweep is the experimenting the paper wants to automate for a jungle-aware CESM)"
    );
}
