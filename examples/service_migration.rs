//! Kill-a-host migration demo: start a session on a two-host warm
//! pool, kill the host it is running on, and watch the service restore
//! the session from its last checkpoint on the surviving host — with a
//! final state bitwise identical to a run that never saw the kill.
//!
//! ```text
//! cargo run --release --example service_migration
//! ```

use jungle::service::{Service, ServiceConfig, SessionSpec, SessionStatus};

fn spec() -> SessionSpec {
    SessionSpec { stars: 48, gas: 160, seed: 42, iterations: 12, substeps: 2, ..Default::default() }
}

fn main() {
    // fault-free reference digest, through the same service machinery
    let calm = Service::new(ServiceConfig { pool_size: 1, ..ServiceConfig::default() });
    let id = calm.submit("baseline", spec()).expect("admitted");
    let want = match calm.wait(id) {
        Some(SessionStatus::Completed { digest, .. }) => digest,
        other => panic!("baseline did not complete: {other:?}"),
    };
    calm.shutdown();
    println!("service_migration: fault-free digest {want:#018x}");

    let service = Service::new(ServiceConfig { pool_size: 2, ..ServiceConfig::default() });
    let id = service.submit("victim", spec()).expect("admitted");
    let host = loop {
        match service.status(id) {
            Some(SessionStatus::Running { host, .. }) => break host,
            Some(SessionStatus::Queued) => std::thread::yield_now(),
            other => panic!("session ended before the kill landed: {other:?}"),
        }
    };
    println!("  session {id} running on warm host {host} — killing that host");
    service.kill_host(host);

    match service.wait(id) {
        Some(SessionStatus::Completed { digest, migrations, iterations, wall_ms, .. }) => {
            println!(
                "  completed: {iterations} iterations, {migrations} migration(s), {wall_ms} ms"
            );
            println!("  digest {digest:#018x} — bitwise match: {}", digest == want);
            assert_eq!(digest, want, "migrated run must equal the fault-free run");
        }
        other => panic!("session did not survive the kill: {other:?}"),
    }
    for (i, h) in service.health().iter().enumerate() {
        println!("  host {i}: {h:?}");
    }
    let c = service.counters();
    println!(
        "  counters: kills {}  migrations {}  re-warms {}",
        c.chaos_kills, c.migrations, c.rewarms
    );
    service.shutdown();
}
