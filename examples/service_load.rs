//! Jobs-API load generator: push a thousand small sessions from a
//! handful of tenants through the multi-session service on one
//! machine, and report latency percentiles plus the shed-vs-served
//! accounting that must always add up.
//!
//! ```text
//! cargo run --release --example service_load
//! cargo run --release --example service_load -- --sessions 2000 --pool 8
//! ```
//!
//! Every submission ends in exactly one bucket — served, failed
//! (typed), shed on queue depth, or shed on tenant quota — and the
//! service's own counters must agree with the client's view.

use jungle::service::{
    QuotaPolicy, Service, ServiceConfig, SessionSpec, SessionStatus, SubmitError,
};
use std::time::Instant;

fn main() {
    let mut sessions = 1000usize;
    let mut pool = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--sessions", Some(v)) => sessions = v.parse().expect("--sessions N"),
            ("--pool", Some(v)) => pool = v.parse().expect("--pool K"),
            _ => {
                eprintln!("usage: service_load [--sessions N] [--pool K]");
                std::process::exit(2);
            }
        }
    }
    const TENANTS: usize = 8;

    let service = Service::new(ServiceConfig {
        pool_size: pool,
        quota: QuotaPolicy { max_queue_depth: sessions, per_tenant_in_flight: sessions / 4 },
        ..ServiceConfig::default()
    });
    println!("service_load: {sessions} sessions, {TENANTS} tenants, {pool} warm in-process hosts");

    let t0 = Instant::now();
    let mut ids = Vec::with_capacity(sessions);
    let (mut shed_overloaded, mut shed_quota) = (0u64, 0u64);
    for i in 0..sessions {
        let spec = SessionSpec {
            stars: 8,
            gas: 24,
            seed: 1 + i as u64,
            iterations: 2,
            substeps: 1,
            ..SessionSpec::default()
        };
        match service.submit(&format!("tenant-{}", i % TENANTS), spec) {
            Ok(id) => ids.push(id),
            Err(SubmitError::Overloaded { .. }) => shed_overloaded += 1,
            Err(SubmitError::QuotaExceeded { .. }) => shed_quota += 1,
            Err(e @ SubmitError::ShuttingDown) => panic!("unexpected rejection: {e}"),
        }
    }
    let submitted = t0.elapsed();

    let mut wall_ms: Vec<u64> = Vec::with_capacity(ids.len());
    let mut failed = 0u64;
    for id in &ids {
        match service.wait(*id) {
            Some(SessionStatus::Completed { wall_ms: ms, .. }) => wall_ms.push(ms),
            Some(SessionStatus::Failed { failure, .. }) => {
                eprintln!("session {id} failed: {failure}");
                failed += 1;
            }
            other => panic!("non-terminal end state: {other:?}"),
        }
        service.forget(*id);
    }
    let elapsed = t0.elapsed();
    let counters = service.counters();
    service.shutdown();

    wall_ms.sort_unstable();
    let pct = |p: f64| {
        let idx = ((wall_ms.len().max(1) as f64 - 1.0) * p).round() as usize;
        wall_ms.get(idx).copied().unwrap_or(0)
    };
    let served = wall_ms.len() as u64;
    println!(
        "  submitted in {:.0} ms, drained in {:.2} s ({:.0} sessions/s)",
        submitted.as_secs_f64() * 1e3,
        elapsed.as_secs_f64(),
        served as f64 / elapsed.as_secs_f64()
    );
    println!("  latency (submit→complete): p50 {} ms  p99 {} ms", pct(0.50), pct(0.99));
    println!(
        "  served {served}  failed {failed}  shed {} (overloaded {shed_overloaded} / quota {shed_quota})",
        shed_overloaded + shed_quota
    );

    let clean = served + failed + shed_overloaded + shed_quota == sessions as u64
        && counters.completed == served
        && counters.failed == failed
        && counters.shed_overloaded == shed_overloaded
        && counters.shed_quota == shed_quota;
    println!("  accounting clean: {clean}");
    assert!(clean, "every submission must land in exactly one bucket");
    assert_eq!(failed, 0, "a calm pool must not fail sessions");
}
