//! The §6.2 lab-conditions experiment: the four scenarios of Table 1,
//! measured on the simulated Fig 12 infrastructure.
//!
//! ```text
//! cargo run --release --example lab_scenarios
//! ```

use jungle::core::scenarios::{format_table1, run_scenario};
use jungle::core::Scenario;

fn main() {
    println!("Lab conditions (Fig 12 topology): one bridge iteration per scenario\n");
    let results: Vec<_> = Scenario::all()
        .into_iter()
        .map(|s| {
            eprintln!("running {:?}...", s);
            run_scenario(s, 1).result
        })
        .collect();
    println!("{}", format_table1(&results));
    println!("paper: 353 / 89 / 84 / 62.4 s per iteration (§6.2)");
    println!(
        "note: our full-jungle prototype overlaps WAN transfers with compute and\n\
         parallelizes all models, so scenario 4 lands well below the paper's 62.4 s;\n\
         the ordering and the CPU→GPU→remote-GPU factors match (see EXPERIMENTS.md)."
    );
}
