//! The embedded-cluster bridge over real TCP sockets, with the coupling
//! model sharded across a pool of socket workers.
//!
//! Four kernels run behind loopback `WorkerServer`s (what the
//! `jungle-worker` binary hosts across machines), the coupler drives
//! them with `SocketChannel`s, and the coupling kick fans out over a
//! 3-worker `ShardedChannel` pool. At the end the run is compared —
//! bitwise — against the same bridge over in-process channels: the
//! transport is physically real but numerically invisible.
//!
//! ```text
//! cargo run --release --example socket_cluster
//! ```

use jungle::amuse::channel::{Channel, LocalChannel};
use jungle::amuse::shard::ShardedChannel;
use jungle::amuse::socket::WorkerFleet;
use jungle::amuse::worker::{
    CouplingWorker, GravityWorker, HydroWorker, ParticleData, StellarWorker,
};
use jungle::amuse::{Bridge, ChannelStats, EmbeddedCluster, SocketChannel};
use jungle::nbody::Backend;

const COUPLING_SHARDS: usize = 3;

fn main() {
    let cluster = EmbeddedCluster::build(48, 192, 0.5, 39);
    println!(
        "socket cluster: {} stars + {} gas over TCP, coupling sharded ×{COUPLING_SHARDS}",
        cluster.stars.len(),
        cluster.gas.len(),
    );

    // --- spawn the worker pool (one TCP server per worker) -------------
    // The fleet is declared before any channel, so it drops last: if a
    // connect or an assertion below bails out early, its Drop sends each
    // server a clean Shutdown and joins the thread — no leaked workers.
    let mut fleet = WorkerFleet::new();
    let stars = cluster.stars.clone();
    let gas = cluster.gas.clone();
    let imf = cluster.star_masses_msun.clone();
    let g_addr = fleet.spawn("phigrape", move || GravityWorker::new(stars, Backend::Scalar));
    let h_addr = fleet.spawn("gadget", move || HydroWorker::new(gas));
    let s_addr = fleet.spawn("sse", move || StellarWorker::new(imf, 0.02));

    let coupling_shards: Vec<Box<dyn Channel>> = (0..COUPLING_SHARDS)
        .map(|i| {
            let addr = fleet.spawn(format!("fi-{i}"), CouplingWorker::fi);
            let ch = SocketChannel::connect(addr, format!("fi-{i}")).expect("connect shard");
            println!("  coupling shard {i} on {}", ch.peer_addr().unwrap());
            Box::new(ch) as Box<dyn Channel>
        })
        .collect();
    let coupling = ShardedChannel::with_counts(coupling_shards, vec![0; COUPLING_SHARDS]);

    // --- drive the bridge over the sockets ------------------------------
    let mut cfg = cluster.bridge_config();
    cfg.substeps = 4;
    cfg.stellar_interval = 2;
    let mut bridge = Bridge::new(
        Box::new(SocketChannel::connect(g_addr, "phigrape").expect("connect gravity")),
        Box::new(SocketChannel::connect(h_addr, "gadget").expect("connect hydro")),
        Box::new(coupling),
        Some(Box::new(SocketChannel::connect(s_addr, "sse").expect("connect stellar"))),
        cfg.clone(),
    );

    let t0 = std::time::Instant::now();
    for i in 0..4 {
        let rep = bridge.iteration();
        println!(
            "iter {i}: t = {:.4} ({:.2} Myr), {} calls, {} SNe",
            rep.time,
            rep.time * cfg.time_unit_myr,
            rep.calls,
            rep.supernovae
        );
    }
    let elapsed = t0.elapsed();
    let (stars_tcp, gas_tcp) = bridge.snapshots();

    let (g, h, c, s) = bridge.channel_stats();
    println!("\nchannel traffic (coupler side, counted from real TCP bytes):");
    print_stats("gravity", &g);
    print_stats("hydro", &h);
    print_stats(&format!("coupling ×{COUPLING_SHARDS}"), &c);
    print_stats("stellar", &s.unwrap());
    println!("wall time over sockets: {elapsed:.2?}");

    drop(bridge); // Stop frames -> the servers shut down
    fleet.join_all().expect("server exits cleanly");

    // --- the same run, in process, unsharded ----------------------------
    let mut local = Bridge::new(
        Box::new(LocalChannel::new(Box::new(GravityWorker::new(
            cluster.stars.clone(),
            Backend::Scalar,
        )))),
        Box::new(LocalChannel::new(Box::new(HydroWorker::new(cluster.gas.clone())))),
        Box::new(LocalChannel::new(Box::new(CouplingWorker::fi()))),
        Some(Box::new(LocalChannel::new(Box::new(StellarWorker::new(
            cluster.star_masses_msun.clone(),
            0.02,
        ))))),
        cfg,
    );
    let t0 = std::time::Instant::now();
    for _ in 0..4 {
        local.iteration();
    }
    let local_elapsed = t0.elapsed();
    let (stars_loc, gas_loc) = local.snapshots();

    let identical = bitwise_eq(&stars_tcp, &stars_loc) && bitwise_eq(&gas_tcp, &gas_loc);
    println!("wall time in process:   {local_elapsed:.2?}");
    println!(
        "socket run bitwise identical to local run: {identical} \
         (transport overhead {:.1}%)",
        100.0 * (elapsed.as_secs_f64() / local_elapsed.as_secs_f64() - 1.0)
    );
    assert!(identical, "transport must be numerically invisible");
}

fn print_stats(name: &str, s: &ChannelStats) {
    println!(
        "  {name:<12} {:>6} calls  {:>9} B out  {:>9} B in  {:>10.3e} flops",
        s.calls, s.bytes_out, s.bytes_in, s.flops
    );
}

fn bitwise_eq(a: &ParticleData, b: &ParticleData) -> bool {
    let f = |x: &[f64], y: &[f64]| {
        x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
    };
    let v = |x: &[[f64; 3]], y: &[[f64; 3]]| {
        x.len() == y.len()
            && x.iter().zip(y).all(|(p, q)| (0..3).all(|k| p[k].to_bits() == q[k].to_bits()))
    };
    f(&a.mass, &b.mass) && v(&a.pos, &b.pos) && v(&a.vel, &b.vel)
}
