//! The SC11 demonstration (Figs 8–11): coupler on a laptop in Seattle, all
//! models in the Netherlands behind a transatlantic 1G lightpath, with the
//! IbisDeploy monitoring views rendered as text.
//!
//! ```text
//! cargo run --release --example sc11_demo
//! ```

use jungle::core::scenarios::run_sc11;
use jungle::deploy::monitor::MonitorView;
use jungle::netsim::SimDuration;

fn main() {
    println!("SC11 demonstration: worst case — coupler in Seattle, models in NL\n");
    let run = run_sc11(1);

    println!(
        "one bridge iteration took {:.1} virtual seconds across the Atlantic",
        run.result.seconds_per_iteration
    );
    println!(
        "WAN IPL traffic {:.1} MiB, intra-worker MPI traffic {:.1} MiB, {} RPC calls\n",
        run.result.wan_ipl_bytes as f64 / (1 << 20) as f64,
        run.result.mpi_bytes as f64 / (1 << 20) as f64,
        run.result.calls_per_iteration
    );

    let mut sim = run.sim.borrow_mut();
    let now = sim.now();
    let overlay_view = run.overlay.view(sim.topology());
    let (topo, metrics) = sim.monitor_parts();
    let mut view =
        MonitorView { topo, metrics, window: SimDuration::from_nanos(now.as_nanos().max(1)) };
    println!("{}", view.render_resource_map(&run.realm));
    println!("{}", view.render_jobs(&run.jobs));
    println!("{}", overlay_view.render());
    println!("{}", view.render_traffic());
}
